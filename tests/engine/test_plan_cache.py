"""The engine plan cache: memoized unbound plans, rebound per database.

The ROADMAP follow-up this implements: ``Engine`` memoizes optimized plans
keyed by the query AST (dialect and optimize-flag are fixed per engine, so
the (query, dialect, optimize) triple is the effective key), and a cached
plan re-executed against a different database must behave exactly like a
freshly compiled one — including the reset of every per-execution memo the
optimizer introduces.
"""

import random

import pytest

from repro.core import NULL, Database, Schema, validation_schema
from repro.engine import Engine, Planner, bind_plan
from repro.engine.operators import TableScan
from repro.generator import DataFillerConfig, fill_database
from repro.generator.queries import QueryGenerator
from repro.sql import annotate

SCHEMA = Schema({"R": ("A", "B"), "S": ("A",)})


def make_db(rows_r, rows_s):
    return Database(SCHEMA, {"R": rows_r, "S": rows_s})


def test_cache_hits_counted_and_results_correct_across_databases():
    engine = Engine(SCHEMA, "postgres")
    query = annotate("SELECT R.A FROM R WHERE R.A = 1", SCHEMA)
    db1 = make_db([(1, 2), (3, 4)], [(1,)])
    db2 = make_db([(1, 5), (1, 6), (7, 8)], [(9,)])
    assert len(engine.execute(query, db1)) == 1
    assert len(engine.execute(query, db2)) == 2
    assert len(engine.execute(query, db1)) == 1
    info = engine.cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 2
    assert info["size"] == 1


def test_cached_subquery_probes_reset_between_databases():
    """The optimizer's closed-subquery memos are per-execution state; a
    cached plan must not leak one database's subquery result into the next."""
    engine = Engine(SCHEMA, "postgres")
    query = annotate(
        "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", SCHEMA
    )
    db_hit = make_db([(1, 2)], [(1,)])
    db_miss = make_db([(1, 2)], [(3,)])
    db_null = make_db([(1, 2)], [(NULL,)])
    assert len(engine.execute(query, db_hit)) == 1
    assert len(engine.execute(query, db_miss)) == 0
    assert len(engine.execute(query, db_null)) == 0
    assert len(engine.execute(query, db_hit)) == 1
    assert engine.cache_info()["hits"] == 3


def test_correlated_exists_memo_reset_between_databases():
    engine = Engine(SCHEMA, "postgres")
    query = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        SCHEMA,
    )
    assert len(engine.execute(query, make_db([(1, 0), (2, 0)], [(1,)]))) == 1
    assert len(engine.execute(query, make_db([(1, 0), (2, 0)], [(2,)]))) == 1
    assert len(engine.execute(query, make_db([(1, 0), (2, 0)], []))) == 0


def test_cache_disabled_and_eviction():
    uncached = Engine(SCHEMA, "postgres", plan_cache_size=0)
    query = annotate("SELECT R.A FROM R", SCHEMA)
    db = make_db([(1, 2)], [])
    uncached.execute(query, db)
    uncached.execute(query, db)
    assert uncached.cache_info() == {
        "hits": 0, "misses": 0, "evictions": 0, "size": 0, "entries": 0,
        "bytes": 0, "maxsize": 0, "max_bytes": 0,
        # Cardinalities are seeded at bind time (before planning), so even
        # single-use plans — which are never unbound through the feedback
        # walk — order their joins from the real table sizes.
        "observed_rows": {"R": 1, "S": 0},
        "reoptimizations": 0,
        "build": {
            "hits": 0, "misses": 0, "cross_hits": 0, "evictions": 0,
            "size": 0, "entries": 0, "bytes": 0, "maxsize": 128, "max_bytes": 0,
        },
    }
    tiny = Engine(SCHEMA, "postgres", plan_cache_size=2)
    queries = [
        annotate(f"SELECT R.A FROM R WHERE R.A = {i}", SCHEMA) for i in range(4)
    ]
    for q in queries:
        tiny.execute(q, db)
    info = tiny.cache_info()
    assert info["evictions"] == 2
    assert info["size"] == 2
    tiny.clear_plan_cache()
    assert tiny.cache_info()["size"] == 0


def test_unbound_planner_emits_table_scans_and_requires_binding():
    query = annotate("SELECT R.A FROM R", SCHEMA)
    compiled = Planner(SCHEMA, None, "postgres").compile(query)
    scans = [
        node
        for node in [compiled.plan] + getattr(compiled.plan, "children", [])
        if isinstance(node, TableScan)
    ]
    with pytest.raises(RuntimeError, match="without a bound database"):
        list(compiled.plan.iter_rows(()))
    bind_plan(compiled.plan, make_db([(1, NULL)], []))
    assert list(compiled.plan.iter_rows(())) == [(1,)]


def test_cached_engine_agrees_with_uncached_on_random_workload():
    """Property check: plan caching never changes results — the same random
    queries over fresh random databases, cached vs cache-disabled."""
    schema = validation_schema(4)
    cached = Engine(schema, "postgres")
    uncached = Engine(schema, "postgres", plan_cache_size=0)
    queries = [
        QueryGenerator(schema, rng=random.Random(s)).generate() for s in range(12)
    ]
    for round_number in range(3):
        for i, query in enumerate(queries):
            db = fill_database(
                schema,
                random.Random(round_number * 100 + i),
                DataFillerConfig(max_rows=4),
            )
            try:
                expected = uncached.execute(query, db)
            except Exception as exc:
                with pytest.raises(type(exc)):
                    cached.execute(query, db)
                continue
            assert cached.execute(query, db).same_as(expected)
    assert cached.cache_info()["hits"] >= 24  # rounds 2..3 all hit
