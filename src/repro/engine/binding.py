"""Late binding, cache hygiene and cross-execution build-side sharing.

A plan compiled without a database (:class:`~repro.engine.planner.Planner`
with ``db=None``) contains :class:`~repro.engine.operators.TableScan` leaves
that name their base table but carry no rows.  Such a plan is a pure
function of ``(query, schema, dialect, optimize)`` and can be cached and
re-executed against any number of databases — provided that, before each
execution,

* every ``TableScan`` is bound to the current database's rows
  (:func:`bind_plan`), and
* every per-execution memo the optimizer introduced is cleared
  (:func:`reset_plan`): :class:`~repro.engine.operators.CachedSubplan` /
  :class:`~repro.engine.operators.MemoSubplan` materializations,
  :class:`~repro.engine.operators.HashJoin` build tables,
  :class:`~repro.engine.operators.ExistsProbe` booleans and per-binding
  memos, :class:`~repro.engine.operators.InPred` binding memos, and
  :class:`~repro.engine.operators.SemiJoinProbe` probe sets — all of which
  are only valid for the database they were computed against.

:func:`iter_plan_nodes` / :func:`iter_predicates` walk the full operator
tree, *including* the subplans nested inside WHERE-clause predicates, which
is where most of the state lives.

Build-side sharing
------------------

The trial campaigns run the same handful of queries over thousands of
generated databases, and generated table contents repeat (small domains,
small row caps) — yet every execution used to rebuild hash-join build
tables, semi-join probe sets and subquery materializations from scratch.
:class:`BuildSideCache` shares them *across executions, keyed by content*:
each shareable structure is a pure function of (a) the node that computes
it — tagged with a process-unique serial so evicted plans can never alias a
new node — and (b) the bound rows of the base tables its subtree reads
(plus, for per-binding memo dicts, the outer values in the memo key, which
the dicts already encode).  :func:`bind_plan` restores structures whose
content key hits the cache, and :func:`unbind_plan` harvests the structures
the execution computed, so a repeated-content trial pays for its build
sides exactly once.  Entries hold copies made at bind time — never the
:class:`~repro.core.schema.Database` object — and the cache is a bounded
LRU, so rebinding to fresh content simply misses and ages the old entries
out.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.schema import Database
from ..core.values import Null
from .expressions import AndPred, NotPred, OrPred
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    GenericJoin,
    HashJoin,
    HashSetOp,
    InPred,
    MemoSubplan,
    PlanNode,
    ProjectOp,
    RemapOp,
    SemiJoinProbe,
    SetOpNode,
    TableScan,
)

__all__ = [
    "iter_plan_nodes",
    "iter_predicates",
    "bind_plan",
    "reset_plan",
    "unbind_plan",
    "BuildSideCache",
]


def iter_predicates(pred) -> Iterator[object]:
    """Every predicate node reachable from ``pred`` (including itself)."""
    yield pred
    if isinstance(pred, (AndPred, OrPred)):
        yield from iter_predicates(pred.left)
        yield from iter_predicates(pred.right)
    elif isinstance(pred, NotPred):
        yield from iter_predicates(pred.operand)


def iter_plan_nodes(plan: PlanNode) -> Iterator[Tuple[PlanNode, object]]:
    """Walk a plan tree, yielding ``(node, None)`` for operators and
    ``(None, predicate)`` for the predicate nodes inside filters — and
    recursing into the subplans of EXISTS/IN predicates."""
    yield plan, None
    if isinstance(plan, (CrossJoin, GenericJoin)):
        for child in plan.children:
            yield from iter_plan_nodes(child)
    elif isinstance(plan, (FilterOp,)):
        yield from iter_plan_nodes(plan.child)
        for pred in iter_predicates(plan.predicate):
            yield None, pred
            subplan = getattr(pred, "subplan", None)
            if subplan is not None:
                yield from iter_plan_nodes(subplan)
    elif isinstance(
        plan, (ProjectOp, DistinctOp, CachedSubplan, MemoSubplan, RemapOp)
    ):
        yield from iter_plan_nodes(plan.child)
    elif isinstance(plan, (SetOpNode, HashSetOp, HashJoin)):
        yield from iter_plan_nodes(plan.left)
        yield from iter_plan_nodes(plan.right)
    # TableScan / StaticScan are leaves.


# -- the build-side cache -----------------------------------------------------

_MISSING = object()

#: Process-unique serials for shareable nodes: a cache key must never alias
#: two nodes, and ``id()`` can be reused after a cached plan is evicted and
#: collected, so identity is pinned the first time a node is shared.
_share_serial = itertools.count(1)


def _share_identity(carrier) -> int:
    serial = getattr(carrier, "_share_id", None)
    if serial is None:
        serial = next(_share_serial)
        carrier._share_id = serial
    return serial


class BuildSideCache:
    """Content-keyed LRU cache of derived execution structures.

    Values are whatever a shareable carrier computes during one execution —
    a hash-join build table, a semi-join probe set, a materialized subquery
    row list, or a per-binding memo dict.  Keys pair the carrier's serial
    with the bound contents of the base tables its subtree reads, so a hit
    is exact (dict key equality compares the actual rows, not a digest) and
    rebinding to different content is automatically a miss — the
    invalidation story is the key itself.
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: tuple):
        """The cached value, or the module-private miss sentinel."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def store(self, key: tuple, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }


def _shareable_carriers(nodes) -> List[Tuple[object, PlanNode]]:
    """(carrier, feeding subtree) pairs for every structure worth sharing.

    A structure is shareable when it is a pure function of its subtree's
    bound table contents: closed materializations (``CachedSubplan``, a
    closed ``HashJoin`` build side, ``SemiJoinProbe`` sets, a closed
    ``ExistsProbe`` boolean) trivially are, and per-binding memo dicts
    (``MemoSubplan``, correlated ``ExistsProbe`` / ``InPred``) are pure
    once the binding — already part of each dict key — is accounted for.
    """
    carriers: List[Tuple[object, PlanNode]] = []
    for node, pred in nodes:
        if isinstance(node, (CachedSubplan, MemoSubplan)):
            carriers.append((node, node.child))
        elif isinstance(node, HashJoin):
            if node.right.free_refs() == frozenset():
                carriers.append((node, node.right))
        elif isinstance(node, GenericJoin):
            if node.free_refs() == frozenset():
                # The tries are a pure function of every child's rows, so
                # the feeding subtree is the whole node.
                carriers.append((node, node))
        elif isinstance(pred, ExistsProbe):
            if pred.closed or pred._refs is not None:
                carriers.append((pred, pred.subplan))
        elif isinstance(pred, InPred):
            if pred._refs is not None:
                carriers.append((pred, pred.subplan))
        elif isinstance(pred, SemiJoinProbe):
            carriers.append((pred, pred.subplan))
    return carriers


def _subtree_tables(subtree: PlanNode) -> Tuple[str, ...]:
    """Sorted names of the base tables a carrier's subtree reads."""
    names = set()
    for node, _pred in iter_plan_nodes(subtree):
        if isinstance(node, TableScan):
            names.add(node.table)
    return tuple(sorted(names))


def _share_plan(plan: PlanNode, nodes) -> List[Tuple[object, int, Tuple[str, ...]]]:
    """The plan's shareable carriers with their serials and table names.

    Purely structural, so it is computed once per plan object and cached on
    it — the per-bind work is then only fingerprinting the bound rows of
    the tables the carriers actually read.
    """
    cached = getattr(plan, "_share_analysis", None)
    if cached is None:
        cached = [
            (carrier, _share_identity(carrier), _subtree_tables(subtree))
            for carrier, subtree in _shareable_carriers(nodes)
        ]
        plan._share_analysis = cached
    return cached


def _restore(carrier, value) -> None:
    if isinstance(carrier, CachedSubplan):
        carrier._cache = value
    elif isinstance(carrier, MemoSubplan):
        carrier._memo = value
    elif isinstance(carrier, HashJoin):
        carrier._table = value
    elif isinstance(carrier, GenericJoin):
        carrier._tries = value
    elif isinstance(carrier, ExistsProbe):
        if carrier.closed:
            carrier._known = value
        else:
            carrier._memo = value
    elif isinstance(carrier, InPred):
        carrier._memo = value
    elif isinstance(carrier, SemiJoinProbe):
        carrier._keys, carrier._null_rows, carrier._rows = value


def _harvest(carrier):
    """The carrier's computed structure, or the miss sentinel if unbuilt."""
    if isinstance(carrier, CachedSubplan):
        return carrier._cache if carrier._cache is not None else _MISSING
    if isinstance(carrier, MemoSubplan):
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, HashJoin):
        return carrier._table if carrier._table is not None else _MISSING
    if isinstance(carrier, GenericJoin):
        return carrier._tries if carrier._tries is not None else _MISSING
    if isinstance(carrier, ExistsProbe):
        if carrier.closed:
            return carrier._known if carrier._known is not None else _MISSING
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, InPred):
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, SemiJoinProbe):
        if carrier._rows is not None:
            return (carrier._keys, carrier._null_rows, carrier._rows)
    return _MISSING


def bind_plan(
    plan: PlanNode,
    db: Database,
    cache: Optional[BuildSideCache] = None,
    columnar: bool = False,
) -> PlanNode:
    """Bind every :class:`TableScan` to ``db`` and reset execution caches.

    Returns the same plan object (mutated in place): binding is cheap — one
    tree walk — compared to re-planning and re-optimizing the query, which
    is the point of the plan cache.  The Null -> None row conversion (and,
    with ``columnar=True``, the row -> column transposition the vectorized
    tier scans from) is a pure function of the immutable
    :class:`~repro.core.table.Table`, so both are memoized *on the table*:
    rebinding the same database — or another plan reading the same table —
    pays for the conversion exactly once, and the memos die with the
    database rather than pinning it to a cached plan.

    With a ``cache``, shareable structures whose content key hits are
    restored instead of recomputed, and the (carrier, key) pairs are
    remembered on the plan so :func:`unbind_plan` can harvest what the
    execution builds.  Sharing only engages from a plan's *second* bind:
    keys are per plan node, so a plan executed once can neither hit nor be
    hit, and the trial campaigns — one fresh plan per generated query —
    must not pay the bookkeeping.
    """
    nodes = []
    bound: Dict[str, list] = {}
    for node, pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            node.data = bound.get(node.table)
            if node.data is None:
                table = db.table(node.table)
                rows = table._scan_rows
                if rows is None:
                    rows = table._scan_rows = [
                        tuple(None if isinstance(v, Null) else v for v in record)
                        for record in table.bag
                    ]
                node.data = bound[node.table] = rows
            if columnar:
                table = db.table(node.table)
                cols = table._scan_cols
                if cols is None:
                    if table._scan_rows:
                        cols = list(map(list, zip(*table._scan_rows)))
                    else:
                        cols = [[] for _ in range(node.arity)]
                    table._scan_cols = cols
                node._columns = (node.data, cols)
        _reset_state(node, pred)
        nodes.append((node, pred))
    binds = getattr(plan, "_bind_count", 0) + 1
    plan._bind_count = binds
    if cache is not None and binds >= 2:
        fingerprints: Dict[str, tuple] = {}
        bindings = []
        for carrier, serial, tables in _share_plan(plan, nodes):
            signature = []
            for name in tables:
                fingerprint = fingerprints.get(name)
                if fingerprint is None:
                    fingerprint = fingerprints[name] = tuple(bound[name])
                signature.append((name, fingerprint))
            key = (serial, tuple(signature))
            bindings.append((carrier, key))
            value = cache.lookup(key)
            if value is not _MISSING:
                _restore(carrier, value)
        plan._shared_bindings = bindings
    else:
        plan._shared_bindings = []
    return plan


def reset_plan(plan: PlanNode) -> PlanNode:
    """Clear the per-execution memos of a plan without rebinding tables."""
    for node, pred in iter_plan_nodes(plan):
        _reset_state(node, pred)
    return plan


def unbind_plan(
    plan: PlanNode, cache: Optional[BuildSideCache] = None
) -> PlanNode:
    """Drop table data and memos so a cached plan holds no database rows.

    A plan sitting in the :class:`~repro.engine.Engine` cache would
    otherwise pin the last-executed database (scan rows, probe sets,
    subquery materializations) until its next execution overwrites them.
    With a ``cache``, the structures this execution built are harvested
    into it first, under the content keys recorded by :func:`bind_plan`.
    """
    if cache is not None:
        for carrier, key in getattr(plan, "_shared_bindings", ()):
            value = _harvest(carrier)
            if value is not _MISSING:
                cache.store(key, value)
    plan._shared_bindings = []
    observed_tables: Dict[str, int] = {}
    observed_nodes: Dict[str, int] = {}
    for position, (node, pred) in enumerate(iter_plan_nodes(plan)):
        if isinstance(node, TableScan):
            if node.data is not None:
                count = len(node.data)
                observed_tables[node.table] = count
                node.observed_rows = count
            node.data = None
            node._columns = None  # the columnar memo references the rows
        elif isinstance(node, CachedSubplan) and node._cache is not None:
            observed_nodes[f"{position}:CachedSubplan"] = len(node._cache)
        elif isinstance(node, HashJoin) and node._table is not None:
            observed_nodes[f"{position}:HashJoin"] = _build_size(node._table)
        elif isinstance(node, GenericJoin) and node._tries is not None:
            observed_nodes[f"{position}:GenericJoin"] = sum(
                _trie_size(trie) for trie in node._tries
            )
        _reset_state(node, pred)
    # Cardinality feedback: what this execution actually saw, keyed by
    # base table (scans) and by walk position (intermediate structures).
    # Stored under a private name so a bare-TableScan root keeps its
    # Optional[int] ``observed_rows`` field intact for the optimizer.
    plan._observed_feedback = {"tables": observed_tables, "nodes": observed_nodes}
    return plan


def _build_size(table) -> int:
    """Rows in a hash-join build side, either tier's shape: the row-wise
    tier stores ``key -> [row, ...]``, the columnar tier ``(right columns,
    key -> [row id, ...])``."""
    if isinstance(table, tuple):
        table = table[1]
    return sum(len(group) for group in table.values())


def _trie_size(trie) -> int:
    """Rows indexed by one generic-join trie (or held by a variable-free
    child's plain row list)."""
    if isinstance(trie, dict):
        return sum(_trie_size(level) for level in trie.values())
    return len(trie)


def _reset_state(node, pred) -> None:
    # Memo dicts are *re-bound*, never cleared in place: the harvested dict
    # may live on in the build-side cache, where clearing would wipe it.
    if isinstance(node, CachedSubplan):
        node._cache = None
    elif isinstance(node, MemoSubplan):
        node._memo = {}
    elif isinstance(node, HashJoin):
        node._table = None
    elif isinstance(node, GenericJoin):
        node._tries = None
    if isinstance(pred, ExistsProbe):
        pred._known = None
        pred._memo = {}
    elif isinstance(pred, InPred):
        pred._memo = {}
    elif isinstance(pred, SemiJoinProbe):
        pred._keys = None
        pred._null_rows = None
        pred._rows = None
    elif isinstance(pred, ExistsPred):
        pass  # stateless: re-executes its subplan every probe
