"""Certain/possible answers: the Section 8 future-work direction, executed."""

import random

import pytest

from repro.applications.certainty import (
    approximate_certain,
    approximate_possible,
    count_nulls,
    exact_certain_answers,
    exact_possible_answers,
    is_positive,
    valuations,
)
from repro.core import NULL, Database, Schema
from repro.generator import GeneratorConfig, QueryGenerator


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [(1, 2), (NULL, 2)], "S": [(1,), (NULL,)]},
    )


DOMAIN = (1, 2)


def test_count_nulls(schema, db):
    assert count_nulls(db) == 2


def test_valuations_enumerate_all_completions(schema, db):
    completions = list(valuations(db, DOMAIN))
    assert len(completions) == len(DOMAIN) ** 2
    for completion in completions:
        assert count_nulls(completion) == 0


def test_valuations_independent_occurrences(schema):
    """Codd nulls: two occurrences can take different values."""
    db = Database(schema, {"R": [(NULL, NULL)]})
    completions = {
        next(iter(c.table("R").bag)) for c in valuations(db, DOMAIN)
    }
    assert completions == {(1, 1), (1, 2), (2, 1), (2, 2)}


def test_exact_certain_simple(schema, db):
    # R.A = 1 holds in every completion only for the (1, 2) row.
    certain = exact_certain_answers(
        "SELECT R.A, R.B FROM R WHERE R.A = 1", db, DOMAIN
    )
    assert (1, 2) in certain
    # the NULL row's A is 1 in only half the completions → not certain with B
    assert (2, 2) not in certain


def test_exact_possible_includes_lucky_valuations(schema, db):
    possible = exact_possible_answers(
        "SELECT R.B FROM R WHERE R.A = 2", db, DOMAIN
    )
    assert (2,) in possible  # the NULL can be valued 2


def test_approximate_certain_sound_on_fixture(schema, db):
    query = "SELECT R.B FROM R WHERE R.A IN (SELECT S.A FROM S)"
    assert is_positive(query, schema)
    approx = approximate_certain(query, db)
    exact = exact_certain_answers(query, db, DOMAIN)
    assert approx <= exact


def test_negation_produces_false_positives(schema):
    """The classical failure: with negation, plain SQL evaluation may return
    non-certain rows — the reason [17] exists."""
    db = Database(schema, {"R": [(1, 2)], "S": [(NULL,)]})
    query = "SELECT R.A, R.B FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"
    assert not is_positive(query, schema)
    # 3VL evaluation returns nothing here (u), but EXCEPT-style negation does:
    query2 = "SELECT R.A FROM R EXCEPT SELECT S.A FROM S"
    approx = approximate_certain(query2, db)
    exact = exact_certain_answers(query2, db, (1, 2))
    # (1,) is returned by SQL but is NOT certain: valuing the null as 1
    # removes it.
    assert (1,) in approx
    assert (1,) not in exact


def test_possible_approximation_contains_certain(schema, db):
    query = "SELECT R.B FROM R WHERE R.A = 1"
    assert approximate_certain(query, db) <= approximate_possible(query, db)


def test_possible_approximation_keeps_unknown_rows(schema, db):
    query = "SELECT R.A, R.B FROM R WHERE R.A = 1"
    possible = approximate_possible(query, db)
    # the (NULL, 2) row is possibly A=1
    assert (NULL, 2) in possible
    certain = approximate_certain(query, db)
    assert (NULL, 2) not in certain


def test_is_positive_classification(schema):
    positive = [
        "SELECT R.A FROM R WHERE R.A = 1",
        "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R UNION SELECT S.A FROM S",
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S)",
    ]
    negative = [
        "SELECT R.A FROM R WHERE NOT R.A = 1",
        "SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R EXCEPT SELECT S.A FROM S",
        "SELECT R.A FROM R WHERE R.A IS NULL",
    ]
    for text in positive:
        assert is_positive(text, schema), text
    for text in negative:
        assert not is_positive(text, schema), text


@pytest.mark.parametrize("seed", range(12))
def test_randomized_soundness_on_positive_queries(seed):
    """approximate_certain ⊆ exact certain answers, on random positive
    queries over tiny instances (ground truth by valuation enumeration)."""
    schema = Schema({"R": ("A", "B"), "S": ("C",)})
    rng = random.Random(seed)
    config = GeneratorConfig(
        tables=2,
        nest=1,
        attr=2,
        cond=2,
        star_probability=0.0,
        setop_probability=0.15,
        negation_probability=0.0,
        duplicate_output_probability=0.0,
        null_term_probability=0.0,
        min_constant=1,
        max_constant=2,
    )
    generator = QueryGenerator(schema, config, rng)
    query = None
    for _ in range(50):
        candidate = generator.generate()
        if is_positive(candidate, schema):
            query = candidate
            break
    assert query is not None
    rows_r = [
        tuple(rng.choice([1, 2, NULL]) for _ in range(2))
        for _ in range(rng.randint(0, 2))
    ]
    rows_s = [(rng.choice([1, 2, NULL]),) for _ in range(rng.randint(0, 2))]
    db = Database(schema, {"R": rows_r, "S": rows_s})
    if count_nulls(db) > 4:
        pytest.skip("too many valuations")
    approx = approximate_certain(query, db)
    exact = exact_certain_answers(query, db, (1, 2))
    assert approx <= exact


@pytest.mark.parametrize("seed", range(8))
def test_randomized_possible_superset(seed):
    """exact possible answers ⊆ approximate_possible on positive queries
    (restricted to null-free output rows, which valuations preserve)."""
    schema = Schema({"R": ("A",)})
    rng = random.Random(seed + 50)
    rows = [(rng.choice([1, 2, NULL]),) for _ in range(3)]
    db = Database(schema, {"R": rows})
    query = "SELECT R.A FROM R WHERE R.A = 1"
    exact = exact_possible_answers(query, db, (1, 2))
    approx = approximate_possible(query, db)
    # every null-free exact-possible row must appear, possibly as a null row
    null_free_approx = {r for r in approx if not any(v is NULL for v in r)}
    nullful = {r for r in approx if any(v is NULL for v in r)}
    assert exact <= (null_free_approx | {(1,)} if nullful else null_free_approx)
