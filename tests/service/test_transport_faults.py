"""Retry semantics under injected faults: the idempotency contract.

A connection-level failure (the request never reached the application)
retries freely.  A *timeout* may mean the request was processed with only
the response lost — so it is retried only for requests tagged
``idempotent=True``, and never by default.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.service.transport import (
    JsonHttpServer,
    JsonRequestHandler,
    http_json,
)


class CountingHandler(JsonRequestHandler):
    def do_POST(self):
        self.server.hits += 1  # ThreadingHTTPServer attr pinned below
        self._send({"hits": self.server.hits})


@pytest.fixture()
def server():
    with JsonHttpServer(CountingHandler, hits=0) as srv:
        yield srv


def plan(rates, limits=None):
    return FaultPlan(0, rates, limits)


def test_connect_drop_is_retried_and_server_sees_one_request(server):
    with faults.active(plan({"transport.connect": 1.0}, {"transport.connect": 2})):
        reply = http_json(server.url, {}, retries=3, backoff_s=0.01)
    assert reply == {"hits": 1}  # two injected drops, then one real request


def test_connect_drop_without_retries_raises(server):
    with faults.active(plan({"transport.connect": 1.0}, {"transport.connect": 1})):
        with pytest.raises(ConnectionResetError):
            http_json(server.url, {}, retries=0)


def test_read_timeout_not_retried_by_default(server):
    """The dangerous half: the request WAS processed.  A blind retry would
    silently replay it — so the timeout surfaces to the caller."""
    with faults.active(plan({"transport.read_timeout": 1.0},
                            {"transport.read_timeout": 1})):
        with pytest.raises(TimeoutError):
            http_json(server.url, {}, retries=5, backoff_s=0.01)
    assert server._httpd.hits == 1  # processed exactly once, never replayed


def test_read_timeout_retried_when_idempotent(server):
    with faults.active(plan({"transport.read_timeout": 1.0},
                            {"transport.read_timeout": 2})):
        reply = http_json(server.url, {}, retries=3, backoff_s=0.01,
                          idempotent=True)
    # Two timed-out-but-processed requests were re-sent, then one clean one.
    assert reply == {"hits": 3}


def test_slow_fault_only_delays(server):
    with faults.active(plan({"transport.slow": 1.0})) as active_plan:
        assert http_json(server.url, {}) == {"hits": 1}
        assert active_plan.injected.get("transport.slow", 0) >= 1
