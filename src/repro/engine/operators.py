"""Physical operators of the reference engine: a tiny iterator model.

Each operator exposes a generator, :meth:`PlanNode.iter_rows`, producing rows
given the stack of outer rows (needed because any operator may sit inside a
correlated subquery and reference enclosing rows through compiled
:class:`~repro.engine.expressions.ColumnRef` expressions); the materializing
:meth:`PlanNode.rows` is a convenience over it.  Streaming matters: a filter
above a cross join never holds the whole product in memory, and an EXISTS
probe stops after the first row.  Multisets are handled with
:class:`collections.Counter`, a representation intentionally different from
:class:`repro.core.bag.Bag`.

Besides the textbook operators (:class:`StaticScan`, :class:`CrossJoin`,
:class:`FilterOp`, :class:`ProjectOp`, :class:`DistinctOp`,
:class:`SetOpNode`), this module provides the physical machinery used by the
optimizer (:mod:`repro.engine.optimizer`):

* :class:`HashJoin` — equi-join of two children on typed key columns, with
  SQL's 3VL NULL handling (a NULL key never matches, exactly like the
  equality conjunct it replaces);
* :class:`GenericJoin` — worst-case-optimal multiway equi-join: instead of
  a tree of binary joins, all children are joined at once by intersecting
  per-attribute hash tries one join variable at a time (leapfrog style),
  so a cyclic equality pattern — a triangle, a 4-cycle — never materializes
  the quadratic intermediate a binary plan is forced through;
* :class:`CachedSubplan` — materializes an uncorrelated subplan once per
  execution instead of once per probing row;
* :class:`MemoSubplan` — memoizes a *correlated* FROM-subquery's rows per
  binding of the outer values it reads;
* :class:`RemapOp` — restores the FROM-order column layout above a
  cost-reordered join tree;
* :class:`HashSetOp` — streaming hash-based set operations, replacing the
  counted-multiset :class:`SetOpNode` the planner emits;
* the subquery predicates :class:`ExistsPred` / :class:`InPred` (the naive,
  re-executing forms the planner emits) and their optimized replacements
  :class:`ExistsProbe` (generator-based, early-terminating, result-cached
  when the subplan is closed) and :class:`SemiJoinProbe` (a frozenset probe
  set with 3VL-correct NULL handling for uncorrelated IN).

Every node also answers two static questions the optimizer asks:
:meth:`PlanNode.free_refs` — which ``(depth, index)`` positions of the outer
stack the subtree reads (depth ≥ 1; ``None`` when unknown, e.g. an opaque
filter callable) — and :meth:`PlanNode.width` — the output arity, when
derivable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product as _iter_product
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .expressions import (
    OuterStack,
    Refs,
    Row,
    RowExpr,
    and3,
    compare,
    expr_refs,
    merge_refs,
    not3,
    or3,
)

__all__ = [
    "PlanNode",
    "StaticScan",
    "TableScan",
    "CrossJoin",
    "FilterOp",
    "ProjectOp",
    "DistinctOp",
    "SetOpNode",
    "HashSetOp",
    "HashJoin",
    "GenericJoin",
    "CachedSubplan",
    "MemoSubplan",
    "RemapOp",
    "ExistsPred",
    "ExistsProbe",
    "InPred",
    "SemiJoinProbe",
    "typed_key",
    "pred_refs",
]


def typed_key(values: Sequence[object]) -> Optional[Tuple]:
    """A hashable join/probe key matching ``compare("=")`` semantics.

    None (SQL NULL) anywhere makes the key unusable (equality would be
    unknown); the per-component string tag mirrors the engine's refusal to
    equate values across the string/number divide.
    """
    key = []
    for v in values:
        if v is None:
            return None
        key.append((isinstance(v, str), v))
    return tuple(key)


def _sub_refs(refs: Optional[Refs]) -> Optional[Refs]:
    """Map a subplan's free refs (depth ≥ 1) to the probing predicate's level:
    depth 1 is the probing row itself (depth 0 at the predicate's level)."""
    if refs is None:
        return None
    return frozenset((depth - 1, index) for depth, index in refs)


#: The (depth, index) positions a filter predicate reads; None if opaque.
#: Predicates follow the same refs() protocol as row expressions.
pred_refs = expr_refs


def _outer_part(refs: Optional[Refs]) -> Optional[Refs]:
    if refs is None:
        return None
    return frozenset(r for r in refs if r[0] >= 1)


def _in_fold(values: Row, sub_rows) -> Optional[bool]:
    """The 3VL fold of ``t̄ IN Q``: the disjunction over Q's rows of the
    conjunction of per-position equalities, with short-circuits."""
    result: Optional[bool] = False
    for sub_row in sub_rows:
        comparison: Optional[bool] = True
        for a, b in zip(values, sub_row):
            comparison = and3(comparison, compare("=", a, b))
            if comparison is False:
                break
        result = or3(result, comparison)
        if result is True:
            break
    return result


class PlanNode:
    """Base class of all physical operators."""

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        raise NotImplementedError

    def rows(self, outers: OuterStack) -> List[Row]:
        return list(self.iter_rows(outers))

    def free_refs(self) -> Optional[Refs]:
        """Outer-stack positions (depth ≥ 1) the subtree reads; None if unknown.

        Memoized per node: the answer is purely structural (predicates and
        children never change after construction — binding only installs
        scan rows), and the optimizer asks repeatedly along nested paths,
        which would otherwise make the recursion quadratic.
        """
        memo = getattr(self, "_free_refs_memo", False)
        if memo is False:
            memo = self._free_refs()
            self._free_refs_memo = memo
        return memo

    def _free_refs(self) -> Optional[Refs]:
        raise NotImplementedError

    def width(self) -> Optional[int]:
        """Output arity, or None when it cannot be derived."""
        return None


@dataclass
class StaticScan(PlanNode):
    """Scan of a materialized base table (rows captured at plan bind time).

    ``arity`` is recorded by the planner so the width is known even for an
    empty table (the data alone cannot tell).
    """

    data: List[Row]
    arity: Optional[int] = None

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        return iter(self.data)

    def rows(self, outers: OuterStack) -> List[Row]:
        return self.data

    def _free_refs(self) -> Refs:
        return frozenset()

    def width(self) -> Optional[int]:
        if self.arity is not None:
            return self.arity
        return len(self.data[0]) if self.data else None


@dataclass
class TableScan(PlanNode):
    """Scan of a base table bound to row data *per execution*, not per plan.

    Unlike :class:`StaticScan` (which captures the rows of one database at
    plan time), a ``TableScan`` names the table and leaves ``data`` unbound;
    :func:`repro.engine.binding.bind_plan` installs the rows of the current
    database before each execution.  This is what makes a compiled plan
    reusable across databases — the basis of the :class:`~repro.engine.Engine`
    plan cache used by the trial campaigns, where the same query is never
    re-planned for every trial database.
    """

    table: str
    arity: int
    data: Optional[List[Row]] = field(default=None, compare=False)
    #: Row count seen the last time this scan was bound, recorded by the
    #: unbind walk (and seeded by the engine on freshly planned scans):
    #: the optimizer's cardinality feedback for unbound plans.
    observed_rows: Optional[int] = field(default=None, compare=False, repr=False)
    #: Columnar tier memo: ``(source rows, column vectors)`` — converted
    #: once per bind, invalidated by identity and cleared on unbind.
    _columns: Optional[tuple] = field(default=None, compare=False, repr=False)

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        return iter(self.rows(outers))

    def rows(self, outers: OuterStack) -> List[Row]:
        if self.data is None:
            raise RuntimeError(
                f"TableScan({self.table!r}) executed without a bound database "
                f"(see repro.engine.binding.bind_plan)"
            )
        return self.data

    def _free_refs(self) -> Refs:
        return frozenset()

    def width(self) -> int:
        return self.arity


@dataclass
class CrossJoin(PlanNode):
    """Cartesian product of one or more children, concatenating rows."""

    children: List[PlanNode]

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        materialized: List[List[Row]] = []
        for child in self.children:
            rows = child.rows(outers)
            if not rows:
                return
            materialized.append(rows)
        for combo in _iter_product(*materialized):
            row: Row = combo[0]
            for part in combo[1:]:
                row = row + part
            yield row

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(*(child.free_refs() for child in self.children))

    def width(self) -> Optional[int]:
        total = 0
        for child in self.children:
            w = child.width()
            if w is None:
                return None
            total += w
        return total


@dataclass
class FilterOp(PlanNode):
    """Keeps the rows for which the predicate returns True (not None/False)."""

    child: PlanNode
    predicate: Callable[[Row, OuterStack], Optional[bool]]

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.iter_rows(outers):
            if predicate(row, outers) is True:
                yield row

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(
            self.child.free_refs(), _outer_part(pred_refs(self.predicate))
        )

    def width(self) -> Optional[int]:
        return self.child.width()


@dataclass
class ProjectOp(PlanNode):
    """Evaluates a list of output expressions per input row."""

    child: PlanNode
    expressions: Sequence[RowExpr]

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        expressions = self.expressions
        for row in self.child.iter_rows(outers):
            yield tuple(expr(row, outers) for expr in expressions)

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(
            self.child.free_refs(),
            *(_outer_part(expr_refs(expr)) for expr in self.expressions),
        )

    def width(self) -> int:
        return len(self.expressions)


@dataclass
class DistinctOp(PlanNode):
    """Removes duplicates, keeping first-seen order."""

    child: PlanNode

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        seen = set()
        for row in self.child.iter_rows(outers):
            if row not in seen:
                seen.add(row)
                yield row

    def _free_refs(self) -> Optional[Refs]:
        return self.child.free_refs()

    def width(self) -> Optional[int]:
        return self.child.width()


@dataclass
class SetOpNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with and without ALL, via Counters."""

    op: str
    all: bool
    left: PlanNode
    right: PlanNode

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        left_counts = Counter(self.left.iter_rows(outers))
        right_counts = Counter(self.right.iter_rows(outers))
        result: Counter = Counter()
        if self.op == "UNION":
            result = left_counts + right_counts
            if not self.all:
                result = Counter(dict.fromkeys(result, 1))
        elif self.op == "INTERSECT":
            result = left_counts & right_counts
            if not self.all:
                result = Counter(dict.fromkeys(result, 1))
        elif self.op == "EXCEPT":
            if self.all:
                result = left_counts - right_counts
            else:
                dedup_left = Counter(dict.fromkeys(left_counts, 1))
                result = dedup_left - right_counts
        else:  # pragma: no cover - guarded at compile time
            raise ValueError(f"unknown set operation {self.op}")
        return iter(result.elements())

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(self.left.free_refs(), self.right.free_refs())

    def width(self) -> Optional[int]:
        return self.left.width() if self.left.width() is not None else self.right.width()


@dataclass
class HashJoin(PlanNode):
    """Equi-join: hashes the right child, probes with the left child.

    Replaces ``σ_{l=r}(L × R)``: rows whose key contains NULL are dropped on
    either side (the equality they stand in for would be unknown), and keys
    are typed so that e.g. ``1`` and ``'1'`` never match, exactly like
    :func:`repro.engine.expressions.compare`.  Output rows are ``left +
    right`` concatenations, preserving the FROM-clause column layout.
    """

    left: PlanNode
    right: PlanNode
    left_keys: Tuple[int, ...]
    right_keys: Tuple[int, ...]
    #: Build side, memoized per execution when the right child is closed
    #: (cleared by the binding layer, shareable across executions through
    #: the build-side cache of :mod:`repro.engine.binding`).
    _table: Optional[dict] = field(default=None, repr=False, compare=False)
    _closed_build: Optional[bool] = field(default=None, repr=False, compare=False)
    #: Row count recorded with the cache entry ``_table`` was restored
    #: from, replayed as cardinality feedback without re-walking it.
    _restored_rows: Optional[int] = field(default=None, repr=False, compare=False)

    def _build(self, outers: OuterStack) -> dict:
        table: dict = {}
        right_keys = self.right_keys
        for row in self.right.iter_rows(outers):
            key = typed_key([row[i] for i in right_keys])
            if key is None:
                continue
            table.setdefault(key, []).append(row)
        return table

    def build_table(self, outers: OuterStack) -> dict:
        """The probe table, built at most once per execution when closed."""
        if self._closed_build is None:
            self._closed_build = self.right.free_refs() == frozenset()
        if not self._closed_build:
            return self._build(outers)
        if self._table is None:
            self._table = self._build(outers)
        return self._table

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        table = self.build_table(outers)
        if not table:
            return
        left_keys = self.left_keys
        for row in self.left.iter_rows(outers):
            key = typed_key([row[i] for i in left_keys])
            if key is None:
                continue
            for match in table.get(key, ()):
                yield row + match

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(self.left.free_refs(), self.right.free_refs())

    def width(self) -> Optional[int]:
        left = self.left.width()
        right = self.right.width()
        if left is None or right is None:
            return None
        return left + right


@dataclass
class GenericJoin(PlanNode):
    """Worst-case-optimal multiway equi-join (generic join / leapfrog).

    Replaces a whole multi-child FROM whose cross-child equality graph is
    cyclic.  Each equivalence class of equated columns is one *join
    variable*; every child builds a nested hash trie keyed by the variables
    it binds (in global variable order), and enumeration assigns variables
    one at a time by intersecting the tries' current levels — iterating the
    smallest level and probing the others, the classic leapfrog step.  A
    triangle query therefore does work proportional to the joinable keys
    instead of materializing the quadratic intermediate any binary join
    tree must produce on skewed data.

    Semantics match the equality conjuncts the variables consume exactly:
    a row whose variable column is NULL can never match (the equality would
    be unknown, as in :class:`HashJoin`), keys are typed so ``1`` and
    ``'1'`` differ, and typed equality is transitive on non-NULLs, so
    "every column of the class equal" is exactly the conjunction of the
    original (connected) equality edges.  Output rows concatenate child
    rows in FROM order with full bag multiplicity — the cross product of
    each child's matching rows per variable assignment — so no
    :class:`RemapOp` is ever needed on top.
    """

    children: List[PlanNode]
    #: One entry per join variable, in elimination order: the sorted
    #: ``(child, local column)`` positions the variable binds.  Every
    #: variable spans at least two children (a single-child equality is an
    #: ordinary pushed filter, not a variable).
    variables: Tuple[Tuple[Tuple[int, int], ...], ...]
    #: Per-child hash tries, memoized per execution when every child is
    #: closed (cleared by the binding layer, shareable across executions
    #: through the build-side cache of :mod:`repro.engine.binding`).
    _tries: Optional[List[object]] = field(default=None, repr=False, compare=False)
    _closed_build: Optional[bool] = field(default=None, repr=False, compare=False)
    #: Row count recorded with the cache entry ``_tries`` was restored
    #: from, replayed as cardinality feedback without re-walking it.
    _restored_rows: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        # Purely structural, derived once: which variables each child binds
        # (its trie's level order = global variable order) and, per level,
        # which children participate in the intersection.
        per_child: List[List[Tuple[int, ...]]] = [[] for _ in self.children]
        var_children: List[Tuple[int, ...]] = []
        for var in self.variables:
            cols: Dict[int, List[int]] = {}
            for child, col in var:
                cols.setdefault(child, []).append(col)
            var_children.append(tuple(sorted(cols)))
            for child, local in cols.items():
                per_child[child].append(tuple(local))
        self._child_cols = [tuple(levels) for levels in per_child]
        self._var_children = tuple(var_children)

    def _build_tries(self, children_rows: List[List[Row]]) -> List[object]:
        """One trie per child: nested dicts keyed by the child's variables
        in order, leaf lists holding the rows (bag multiplicity); children
        binding no variable contribute their plain row list.  Rows with a
        NULL variable column — or two same-variable columns that differ —
        can never match and are left out."""
        tries: List[object] = []
        for levels, rows in zip(self._child_cols, children_rows):
            if not levels:
                tries.append(rows)
                continue
            depth = len(levels)
            root: dict = {}
            for row in rows:
                keys = []
                for cols in levels:
                    value = row[cols[0]]
                    if value is None:
                        break
                    key = (isinstance(value, str), value)
                    for extra in cols[1:]:
                        other = row[extra]
                        if other is None or (isinstance(other, str), other) != key:
                            break
                    else:
                        keys.append(key)
                        continue
                    break
                if len(keys) < depth:
                    continue
                node = root
                for key in keys[:-1]:
                    node = node.setdefault(key, {})
                node.setdefault(keys[-1], []).append(row)
            tries.append(root)
        return tries

    def build_tries(self, outers: OuterStack) -> List[object]:
        """The per-child tries, built at most once per execution when every
        child is closed (mirrors :meth:`HashJoin.build_table`)."""
        if self._closed_build is None:
            self._closed_build = self.free_refs() == frozenset()
        if not self._closed_build:
            return self._build_tries([c.rows(outers) for c in self.children])
        if self._tries is None:
            self._tries = self._build_tries(
                [c.rows(outers) for c in self.children]
            )
        return self._tries

    def _solve(self, level: int, positions: List[object]) -> Iterator[Row]:
        """Assign variable ``level`` by intersecting the involved children's
        current trie levels, then recurse; at the bottom every position is a
        row list and the concatenated cross product streams out."""
        if level == len(self.variables):
            for combo in _iter_product(*positions):
                row: Row = combo[0]
                for part in combo[1:]:
                    row = row + part
                yield row
            return
        involved = self._var_children[level]
        smallest = min(involved, key=lambda c: len(positions[c]))
        rest = [c for c in involved if c != smallest]
        for key, descended in positions[smallest].items():
            branch = list(positions)
            branch[smallest] = descended
            for c in rest:
                nxt = positions[c].get(key)
                if nxt is None:
                    break
                branch[c] = nxt
            else:
                yield from self._solve(level + 1, branch)

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        tries = self.build_tries(outers)
        if any(not trie for trie in tries):
            # An empty trie (or an empty variable-free child) admits no
            # combination at all.
            return
        yield from self._solve(0, list(tries))

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(*(child.free_refs() for child in self.children))

    def width(self) -> Optional[int]:
        total = 0
        for child in self.children:
            w = child.width()
            if w is None:
                return None
            total += w
        return total


@dataclass
class CachedSubplan(PlanNode):
    """Materializes a *closed* subplan (no outer references) exactly once.

    A closed EXISTS/IN subquery re-executed per outer row is the single
    largest cost of the naive engine; this node runs it on first demand and
    replays the rows afterwards.
    """

    child: PlanNode
    _cache: Optional[List[Row]] = field(default=None, repr=False, compare=False)

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        return iter(self.rows(outers))

    def rows(self, outers: OuterStack) -> List[Row]:
        if self._cache is None:
            # The child is closed, so the outer stack is irrelevant.
            self._cache = self.child.rows(())
        return self._cache

    def _free_refs(self) -> Optional[Refs]:
        return self.child.free_refs()

    def width(self) -> Optional[int]:
        return self.child.width()


@dataclass
class MemoSubplan(PlanNode):
    """Memoizes a *correlated* subplan's rows per binding of the outer values
    it reads.

    A correlated FROM-subquery re-executes for every probing row of its
    enclosing correlated predicate, yet its rows are a pure function of the
    outer values at its free reference positions; bindings repeat across
    probing rows, so each distinct binding is evaluated once per execution.
    """

    child: PlanNode
    #: Sorted (depth, index) positions of the outer values the child reads.
    memo_refs: Tuple[Tuple[int, int], ...]
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        return iter(self.rows(outers))

    def rows(self, outers: OuterStack) -> List[Row]:
        key = tuple(outers[-d][i] for d, i in self.memo_refs)
        rows = self._memo.get(key)
        if rows is None:
            rows = self._memo[key] = self.child.rows(outers)
        return rows

    def _free_refs(self) -> Optional[Refs]:
        return self.child.free_refs()

    def width(self) -> Optional[int]:
        return self.child.width()


@dataclass
class RemapOp(PlanNode):
    """Permutes columns: ``output[i] = input[mapping[i]]``.

    The join-order optimizer reorders FROM children for cost but must keep
    the output row layout bit-identical to FROM order (projection indices,
    correlated subquery references and filter predicates were all compiled
    against it); a ``RemapOp`` above the reordered join tree restores it.
    """

    child: PlanNode
    mapping: Tuple[int, ...]

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        mapping = self.mapping
        for row in self.child.iter_rows(outers):
            yield tuple(row[j] for j in mapping)

    def _free_refs(self) -> Optional[Refs]:
        return self.child.free_refs()

    def width(self) -> int:
        return len(self.mapping)


@dataclass
class HashSetOp(PlanNode):
    """Hash-based UNION / INTERSECT / EXCEPT, streaming the left child.

    The optimized replacement for :class:`SetOpNode`: instead of counting
    both children and expanding a result multiset, only the side that must
    be fully known is materialized (the right child's counts for INTERSECT/
    EXCEPT, a seen-set for DISTINCT variants) and rows stream out as the
    left child produces them — so an enclosing EXISTS stops the whole
    pipeline at the first row.  Rows are their own hash keys: SQL NULL
    (``None``) is one key value, matching the NOT-DISTINCT row equality the
    set operations use (NULLs equal each other here, unlike in ``=``).
    Bag semantics are unchanged: UNION ALL concatenates, INTERSECT ALL
    keeps minimum multiplicities, EXCEPT ALL subtracts, and the DISTINCT
    variants emit each qualifying row once.
    """

    op: str
    all: bool
    left: PlanNode
    right: PlanNode

    def iter_rows(self, outers: OuterStack) -> Iterator[Row]:
        if self.op == "UNION":
            if self.all:
                yield from self.left.iter_rows(outers)
                yield from self.right.iter_rows(outers)
                return
            seen = set()
            for side in (self.left, self.right):
                for row in side.iter_rows(outers):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        if self.op == "INTERSECT":
            if self.all:
                remaining = Counter(self.right.iter_rows(outers))
                for row in self.left.iter_rows(outers):
                    if remaining[row] > 0:
                        remaining[row] -= 1
                        yield row
                return
            right_rows = set(self.right.iter_rows(outers))
            emitted = set()
            for row in self.left.iter_rows(outers):
                if row in right_rows and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        if self.op == "EXCEPT":
            right_counts = Counter(self.right.iter_rows(outers))
            if self.all:
                for row in self.left.iter_rows(outers):
                    if right_counts[row] > 0:
                        right_counts[row] -= 1
                    else:
                        yield row
                return
            emitted = set()
            for row in self.left.iter_rows(outers):
                if right_counts[row] == 0 and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        raise ValueError(f"unknown set operation {self.op}")  # pragma: no cover

    def _free_refs(self) -> Optional[Refs]:
        return merge_refs(self.left.free_refs(), self.right.free_refs())

    def width(self) -> Optional[int]:
        left = self.left.width()
        return left if left is not None else self.right.width()


# -- subquery predicates -----------------------------------------------------


class ExistsPred:
    """Naive ``EXISTS Q``: fully materializes the subquery per probing row."""

    __slots__ = ("subplan",)

    def __init__(self, subplan: PlanNode):
        self.subplan = subplan

    def __call__(self, row: Row, outers: OuterStack) -> bool:
        return bool(self.subplan.rows(outers + (row,)))

    def refs(self) -> Optional[Refs]:
        return _sub_refs(self.subplan.free_refs())


class ExistsProbe:
    """Optimized ``EXISTS Q``: streams the subquery and stops at the first
    row.  When the subplan is closed, the boolean is computed only once;
    when it is correlated, results are memoized per *binding* — the tuple of
    outer values at the subplan's free reference positions, the only inputs
    the subquery's result can depend on."""

    __slots__ = ("subplan", "closed", "_known", "_refs", "_memo")

    def __init__(
        self,
        subplan: PlanNode,
        closed: bool = False,
        memo_refs: Optional[Refs] = None,
    ):
        self.subplan = subplan
        self.closed = closed
        self._known: Optional[bool] = None
        self._refs = tuple(sorted(memo_refs)) if memo_refs else None
        self._memo: dict = {}

    def _binding(self, row: Row, outers: OuterStack) -> Tuple:
        return tuple(
            row[i] if d == 0 else outers[-d][i] for d, i in self._refs
        )

    def _probe(self, row: Row, outers: OuterStack) -> bool:
        for _ in self.subplan.iter_rows(outers + (row,)):
            return True
        return False

    def __call__(self, row: Row, outers: OuterStack) -> bool:
        if self.closed:
            if self._known is None:
                self._known = self._probe(row, outers)
            return self._known
        if self._refs is None:
            return self._probe(row, outers)
        key = self._binding(row, outers)
        result = self._memo.get(key)
        if result is None:
            result = self._memo[key] = self._probe(row, outers)
        return result

    def refs(self) -> Optional[Refs]:
        return _sub_refs(self.subplan.free_refs())


class InPred:
    """``t̄ [NOT] IN Q``: folds 3VL equality over the subquery's rows.

    Without ``memo_refs`` this is the naive form the planner emits: the
    subquery is re-executed per probing row.  The optimizer supplies
    ``memo_refs`` for correlated subplans, caching the (distinct) subquery
    rows per binding of the referenced outer values — a disjunction cannot
    change under duplicate elimination, so distinct rows suffice."""

    __slots__ = ("exprs", "subplan", "negated", "_refs", "_memo")

    def __init__(
        self,
        exprs: Sequence[RowExpr],
        subplan: PlanNode,
        negated: bool,
        memo_refs: Optional[Refs] = None,
    ):
        self.exprs = tuple(exprs)
        self.subplan = subplan
        self.negated = negated
        self._refs = tuple(sorted(memo_refs)) if memo_refs else None
        self._memo: dict = {}

    def _sub_rows(self, row: Row, outers: OuterStack) -> Sequence[Row]:
        if self._refs is None:
            return self.subplan.rows(outers + (row,))
        key = tuple(row[i] if d == 0 else outers[-d][i] for d, i in self._refs)
        rows = self._memo.get(key)
        if rows is None:
            rows = self._memo[key] = list(
                dict.fromkeys(self.subplan.rows(outers + (row,)))
            )
        return rows

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        values = tuple(expr(row, outers) for expr in self.exprs)
        result = _in_fold(values, self._sub_rows(row, outers))
        return not3(result) if self.negated else result

    def refs(self) -> Optional[Refs]:
        return merge_refs(
            _sub_refs(self.subplan.free_refs()),
            *(expr_refs(expr) for expr in self.exprs),
        )


class SemiJoinProbe:
    """Optimized ``t̄ [NOT] IN Q`` for a *closed* Q: a frozenset probe.

    The subquery's distinct rows are materialized once and split into a
    frozenset of typed NULL-free keys (the fast path) plus the rows that
    contain NULL.  3VL is preserved exactly:

    * probe values without NULL: True on a key hit; otherwise unknown if
      some NULL-containing row matches on every non-NULL position, else
      False;
    * probe values with NULL: the full 3VL fold over the (cached, distinct)
      rows — duplicates cannot change a disjunction, so distinct suffices.
    """

    __slots__ = (
        "exprs",
        "subplan",
        "negated",
        "_keys",
        "_null_rows",
        "_rows",
        "_harvested",
    )

    def __init__(self, exprs: Sequence[RowExpr], subplan: PlanNode, negated: bool):
        self.exprs = tuple(exprs)
        self.subplan = subplan
        self.negated = negated
        self._keys: Optional[frozenset] = None
        self._null_rows: Optional[List[Row]] = None
        self._rows: Optional[List[Row]] = None
        #: The last tuple handed to (or restored from) the build-side
        #: cache, kept so repeat harvests return the identical object.
        self._harvested: Optional[tuple] = None

    def _materialize(self) -> None:
        distinct = list(dict.fromkeys(self.subplan.rows(())))
        keys = []
        null_rows = []
        for sub_row in distinct:
            key = typed_key(sub_row)
            if key is None:
                null_rows.append(sub_row)
            else:
                keys.append(key)
        self._rows = distinct
        self._keys = frozenset(keys)
        self._null_rows = null_rows

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        if self._rows is None:
            self._materialize()
        values = tuple(expr(row, outers) for expr in self.exprs)
        key = typed_key(values)
        if key is not None:
            if key in self._keys:
                result: Optional[bool] = True
            else:
                result = None if self._maybe_null_match(values) else False
        else:
            result = _in_fold(values, self._rows)
        return not3(result) if self.negated else result

    def _maybe_null_match(self, values: Row) -> bool:
        """Whether some NULL-containing row is 3VL-unknown-equal to values."""
        for sub_row in self._null_rows:
            if all(
                b is None or compare("=", a, b) is True
                for a, b in zip(values, sub_row)
            ):
                return True
        return False

    def refs(self) -> Optional[Refs]:
        return merge_refs(*(expr_refs(expr) for expr in self.exprs))
