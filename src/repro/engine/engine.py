"""The engine facade: compile + optimize + execute, with boundary conversions.

:class:`Engine` plays the role of the real RDBMS in the Section 4
experiment: it takes the same annotated query and database as the formal
semantics and produces a :class:`~repro.core.table.Table`, converting its
internal ``None`` nulls back to :data:`~repro.core.values.NULL` only at the
output boundary.

By default the compiled plan is rewritten by the optimizer
(:mod:`repro.engine.optimizer`): selection pushdown, hash equi-joins, and
cached probes for uncorrelated subqueries.  ``optimize=False`` retains the
paper's naive product-then-filter evaluation — the escape hatch used by the
ablation benchmarks to quantify the speedup, with the validation campaigns
guaranteeing both paths agree with the formal semantics.

On top of the plan *rewrites*, the plan is lowered into nested Python
closures by default (:mod:`repro.engine.compile`): predicate trees become
one generated function each, operators capture their children's compiled
iterators directly, and per-row virtual dispatch disappears from the hot
path.  ``compiled=False`` keeps the interpreted operator tree — the
ablation baseline the ``engine_compiled`` / ``engine_interpreted`` bench
stages compare (outcomes are bit-identical either way; the digest gate in
``scripts/bench.py`` enforces it).  Compilation hooks in at plan-cache
admission — compile once, execute many — so with ``plan_cache_size=0``
(the campaign shape: a fresh query every trial, each executed once) plans
stay interpreted: closure generation costs more than a single execution
over 6-row tables saves, measured at ~17% of campaign engine time.

A fourth tier, ``vectorized=True``, swaps the row-at-a-time lowering for
the columnar batch backend (:mod:`repro.engine.columnar`): each bound
table is pivoted once into column vectors, operators exchange row-id
selection batches, and WHERE predicates evaluate as paired 3VL
value/unknown masks (or fused single-pass selections), with tuples
materialized only at emission.  Outcomes remain bit-identical to every
row-wise tier — the ``engine_vectorized`` / ``engine_rowwise`` bench
stages gate on digest equality, and the tier wins ≥3x on selection-heavy
workloads once tables reach thousands of rows.  Unlike the closure
compiler it has no plan-cache admission gate: the tier is explicit
opt-in, so even single-use plans are batch-compiled; at the campaign's
6-row scale that codegen costs more than batch execution saves, which is
why the validation runners keep the interpreted default (the campaign
bench's ``engine_tier_ab`` A/B keeps that decision measured).

Plan cache
----------

Compilation and optimization depend only on ``(query AST, schema, dialect,
optimize)``, never on the database instance, so the engine memoizes
optimized plans per query (dialect and optimize-flag are fixed per engine
instance, completing the key).  Plans are compiled *unbound* — their base
tables are :class:`~repro.engine.operators.TableScan` leaves — and
:func:`repro.engine.binding.bind_plan` installs the current database's rows
and clears per-execution memos before every run.  Prepared-statement-style
reuse is what the trial campaigns and the equivalence checker exercise: the
same query evaluated across many trial databases plans once.  ``cache_info()``
exposes hit/miss/eviction counters for the benchmarks; ``plan_cache_size=0``
disables caching entirely.

Build-side cache
----------------

On top of plan reuse, the engine shares *derived execution structures* —
hash-join build tables, semi-join probe sets, cached/memoized subquery
materializations — across executions through a content-keyed
:class:`~repro.engine.binding.BuildSideCache`: trial campaigns re-draw
table contents from small domains, so identical table contents recur and
the structures they determine need not be rebuilt.  Keys compare the bound
rows themselves (exact, no digests), values are copies made at bind time
(cached plans and cache entries never reference the
:class:`~repro.core.schema.Database`), and ``build_cache_size=0`` disables
sharing.  The cache only engages together with the plan cache — without
plan reuse there is no second execution to share with — and, per plan,
only from the second bind onward: keys are per plan node, so a plan
executed once can neither hit nor be hit, and single-use plans (one fresh
query per campaign trial) pay none of the bookkeeping.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Dict, Optional

from ..core.bag import Bag
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import NULL
from ..sql.ast import Query
from .binding import (
    BuildSideCache,
    bind_plan,
    estimate_bytes,
    iter_plan_nodes,
    unbind_plan,
)
from .columnar import compile_columnar
from .compile import compile_plan
from .operators import TableScan
from .optimizer import DEFAULT_TABLE_ROWS, optimize_plan
from .planner import CompiledQuery, DIALECT_ORACLE, DIALECT_POSTGRES, Planner

__all__ = ["Engine", "DIALECT_POSTGRES", "DIALECT_ORACLE"]

#: Default number of distinct query plans kept per engine (LRU-evicted).
DEFAULT_PLAN_CACHE_SIZE = 256

#: Default number of shared build-side structures kept per engine.
DEFAULT_BUILD_CACHE_SIZE = 128

#: How far the current observed cardinality of a table must drift from the
#: estimate a cached plan was optimized with before the plan is re-optimized
#: at rebind (ratio either way).  Damping: re-planning costs a full compile,
#: so hair-trigger re-optimization on small fluctuations would thrash.
REOPT_DRIFT_FACTOR = 2.0


def _estimate_plan_bytes(compiled: CompiledQuery) -> int:
    """Rough footprint of a cached plan: per-node/per-predicate object
    sizes over the full walk (subquery plans included) plus the label row.
    Plans are cached *unbound* — no table rows — so object headers and
    small per-node tuples dominate, and a node-count-proportional estimate
    is the honest measure a byte budget can evict against."""
    size = sys.getsizeof(compiled) + estimate_bytes(compiled.labels)
    for node, pred in iter_plan_nodes(compiled.plan):
        size += sys.getsizeof(node if node is not None else pred, 64)
    return size


class Engine:
    """An independent executor for basic SQL, in two dialect flavours."""

    def __init__(
        self,
        schema: Schema,
        dialect: str = DIALECT_POSTGRES,
        optimize: bool = True,
        compiled: Optional[bool] = None,
        vectorized: bool = False,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        build_cache_size: int = DEFAULT_BUILD_CACHE_SIZE,
        plan_cache_bytes: Optional[int] = None,
        build_cache_bytes: Optional[int] = None,
        optimizer_options: Optional[Dict[str, bool]] = None,
    ):
        # The tiers compose predictably or not at all: both lowerings
        # consume *optimized* physical plans (HashJoin, HashSetOp, probe
        # nodes), and vectorized/compiled are alternatives, not layers.
        if vectorized and not optimize:
            raise ValueError(
                "Engine(vectorized=True, optimize=False) is invalid: the "
                "columnar backend lowers optimized physical plans; ablate "
                "the tier with vectorized=False instead"
            )
        if compiled is None:
            compiled = optimize and not vectorized
        elif compiled and not optimize:
            raise ValueError(
                "Engine(compiled=True, optimize=False) is invalid: the "
                "closure compiler lowers optimized physical plans; leave "
                "compiled unset (it follows optimize) or pass compiled=False"
            )
        elif compiled and vectorized:
            raise ValueError(
                "Engine(compiled=True, vectorized=True) is ambiguous: pick "
                "one execution tier (vectorized=True already implies the "
                "columnar backend)"
            )
        self.schema = schema
        self.dialect = dialect
        self.optimize = optimize
        self.compiled = compiled
        self.vectorized = vectorized
        self.plan_cache_size = plan_cache_size
        #: Optional estimated-byte budget for cached plans; None = unbounded.
        self.plan_cache_bytes = plan_cache_bytes
        self._plan_cache: "OrderedDict[Query, CompiledQuery]" = OrderedDict()
        self._plan_sizes: Dict[Query, int] = {}
        self._plan_bytes = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._reoptimizations = 0
        self._build_cache = (
            BuildSideCache(build_cache_size, max_bytes=build_cache_bytes)
            if build_cache_size > 0
            else None
        )
        #: Last observed bound row count per base table, harvested from
        #: each cached plan's unbind walk — the cardinality feedback that
        #: replaces ``DEFAULT_TABLE_ROWS`` when later queries are planned.
        self._observed_tables: Dict[str, int] = {}
        #: Ablation knobs forwarded to :func:`optimize_plan` (benchmarks
        #: compare e.g. ``{"reorder_joins": False}`` against the default).
        self.optimizer_options = dict(optimizer_options or {})

    def execute(self, query: Query, db: Database) -> Table:
        """Compile (or reuse a cached plan for) ``query`` and run it on ``db``.

        Compile-time errors (unknown tables, arity mismatches, ambiguous
        references) are raised before any row is produced, matching the
        behaviour of the real systems the engine stands in for.
        """
        if self.optimize:
            # Bind-time cardinality seeding: the incoming database's true
            # table sizes are known *before* planning, so a fresh plan (or
            # the staleness check on a cached one) never has to assume
            # DEFAULT_TABLE_ROWS for a table this execution will bind —
            # single-use campaign plans included.
            for name in db.schema.table_names:
                self._observed_tables[name] = len(db.table(name))
        compiled = self._plan(query)
        cache = self._build_cache if self.plan_cache_size > 0 else None
        bind_plan(compiled.plan, db, cache=cache, columnar=self.vectorized)
        try:
            rows = (compiled.run or compiled.plan.iter_rows)(())
            # NULL restoration at the output boundary; null-free rows (the
            # common case) pass through without rebuilding the tuple.
            records = (
                row
                if None not in row
                else tuple(NULL if v is None else v for v in row)
                for row in rows
            )
            # Bag() materializes fully, so unbinding afterwards is safe.
            return Table(compiled.labels, Bag(records))
        finally:
            if self.plan_cache_size > 0:
                unbind_plan(compiled.plan, cache=cache)
                observed = getattr(compiled.plan, "_observed_feedback", None)
                if observed:
                    self._observed_tables.update(observed["tables"])

    # -- plan cache ---------------------------------------------------------

    def _plan(self, query: Query) -> CompiledQuery:
        if self.plan_cache_size <= 0:
            # Single-use plan: closure compilation would cost more than one
            # execution saves (measured on the campaign workload), so the
            # compiler only hooks in at plan-cache admission below.
            return self._compile(query, admit=False)
        cached = self._plan_cache.get(query)
        if cached is not None:
            self._cache_hits += 1
            self._plan_cache.move_to_end(query)
            if not self._stale(cached.plan):
                return cached
            # The feedback loop closes here: the observed cardinalities
            # contradict the estimates this plan's join order was chosen
            # with, so re-plan with the current numbers and replace the
            # stale entry (results stay bit-identical — only the physical
            # order changes; the RemapOp contract preserves the layout).
            self._reoptimizations += 1
            compiled = self._compile(query)
            self._admit(query, compiled)
            return compiled
        self._cache_misses += 1
        compiled = self._compile(query)
        self._admit(query, compiled)
        return compiled

    def _admit(self, query: Query, compiled: CompiledQuery) -> None:
        """Admit a plan, then evict LRU entries until both the entry-count
        cap and the (optional) estimated-byte budget hold again.  A plan
        evicted right after admission is still returned to the caller —
        over-budget plans simply are not retained."""
        old = self._plan_cache.pop(query, None)
        if old is not None:
            self._plan_bytes -= self._plan_sizes.pop(query, 0)
        self._plan_cache[query] = compiled
        nbytes = _estimate_plan_bytes(compiled)
        self._plan_sizes[query] = nbytes
        self._plan_bytes += nbytes
        while len(self._plan_cache) > self.plan_cache_size or (
            self.plan_cache_bytes is not None
            and self._plan_bytes > self.plan_cache_bytes
            and self._plan_cache
        ):
            evicted, _ = self._plan_cache.popitem(last=False)
            self._plan_bytes -= self._plan_sizes.pop(evicted, 0)
            self._cache_evictions += 1

    def _stale(self, plan) -> bool:
        """Whether observed cardinalities have drifted far enough from the
        estimates ``plan``'s join order was chosen with that re-optimizing
        could pick a different order.  Plans whose shape never depended on
        estimates (``_cost_sensitive`` unset) can never go stale."""
        if not getattr(plan, "_cost_sensitive", False):
            return False
        for table, assumed in getattr(plan, "_planned_rows", {}).items():
            assumed = max(float(assumed), 1.0)
            current = max(
                float(self._observed_tables.get(table, DEFAULT_TABLE_ROWS)), 1.0
            )
            if (
                current > assumed * REOPT_DRIFT_FACTOR
                or assumed > current * REOPT_DRIFT_FACTOR
            ):
                return True
        return False

    def _compile(self, query: Query, admit: bool = True) -> CompiledQuery:
        planner = Planner(self.schema, None, self.dialect)
        compiled = planner.compile(query)
        plan = compiled.plan
        if self.optimize:
            # Cardinality feedback: seed unbound scans with the row counts
            # the engine has observed (bind-time seeding makes that exact
            # for the upcoming database), so the cost-based join ordering
            # stops assuming DEFAULT_TABLE_ROWS; the snapshot of what was
            # assumed feeds the staleness check on later cache hits.
            planned_rows: Dict[str, float] = {}
            for node, _pred in iter_plan_nodes(plan):
                if isinstance(node, TableScan):
                    node.observed_rows = self._observed_tables.get(node.table)
                    planned_rows[node.table] = (
                        float(node.observed_rows)
                        if node.observed_rows is not None
                        else DEFAULT_TABLE_ROWS
                    )
            plan = optimize_plan(plan, **self.optimizer_options)
            plan._planned_rows = planned_rows
        if self.vectorized:
            # No ``admit`` gate: the tier is explicit opt-in, so even
            # single-use plans (plan_cache_size=0) are batch-compiled.
            # Break-even needs tables past the campaign's 6-row scale —
            # the bench's campaign A/B records the measured gap, and the
            # validation runners stay interpreted accordingly.
            run = compile_columnar(plan)
        elif self.compiled and admit:
            run = compile_plan(plan)
        else:
            run = None
        return CompiledQuery(plan, compiled.labels, run)

    def cache_info(self) -> Dict[str, object]:
        """Plan-cache counters plus the observed-cardinality feedback:
        ``observed_rows`` maps each base table to the row count last seen
        (seeded at bind time, confirmed by the unbind walk), and
        ``reoptimizations`` counts cache hits whose plan was re-ordered
        because those observations contradicted its estimates.  ``entries``
        / ``bytes`` size the cache (estimated bytes, LRU-evicted against
        ``max_bytes`` when set), and ``build`` nests the build-side cache's
        own counters so one call sizes both caches."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "reoptimizations": self._reoptimizations,
            "size": len(self._plan_cache),
            "entries": len(self._plan_cache),
            "bytes": self._plan_bytes,
            "maxsize": self.plan_cache_size,
            "max_bytes": self.plan_cache_bytes or 0,
            "observed_rows": dict(self._observed_tables),
            "build": self.build_cache_info(),
        }

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()
        self._plan_sizes.clear()
        self._plan_bytes = 0

    # -- build-side cache ----------------------------------------------------

    def build_cache_info(self) -> Dict[str, int]:
        """Build-side cache counters: hits, misses, cross-query hits,
        evictions, entry count and estimated bytes."""
        if self._build_cache is None:
            return {
                "hits": 0,
                "misses": 0,
                "cross_hits": 0,
                "evictions": 0,
                "size": 0,
                "entries": 0,
                "bytes": 0,
                "maxsize": 0,
                "max_bytes": 0,
            }
        return self._build_cache.info()

    def clear_build_cache(self) -> None:
        if self._build_cache is not None:
            self._build_cache.clear()
