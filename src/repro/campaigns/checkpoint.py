"""Streaming JSONL checkpoints: durable, resumable campaign state.

Format (``campaign-checkpoint/v1``)
-----------------------------------

A checkpoint is a line-oriented JSON file.  The first line is a header::

    {"schema": "campaign-checkpoint/v1", "spec": {...}, "base_seed": 0,
     "trials": 100000}

where ``spec`` is the :class:`~repro.campaigns.backends.CampaignSpec` that
produced the records.  Every subsequent line is one trial record::

    {"seed": 17, "code": 1}
    {"seed": 18, "code": 3, "detail": "seed 18: ..."}

Records are appended as soon as their shard completes and the file is
flushed after every shard, so a killed campaign loses at most the shard in
flight.  Every record line embeds a ``crc`` field — the CRC32 of the line
*without* it — so corruption (a flipped bit, a spliced line) is detected
rather than silently merged.  Records written before CRCs existed (no
``crc`` key) are still accepted.

Two failure modes get opposite treatment.  A torn **final** line is the
ordinary signature of a kill mid-write: readers drop it (a final line
without its newline is torn by definition, even if it happens to parse)
and the seed simply re-runs.  A torn or CRC-failing **interior** line can
only mean the file was corrupted after it was written — readers in strict
mode (every resume and merge path) raise :class:`CheckpointCorruption`
with the 1-indexed line number instead of quietly skipping real data.
The default forgiving mode (progress polling of files another process is
still appending to) skips bad lines as before.

Resuming (:func:`repro.campaigns.run_campaign` with ``resume=True``) loads
the records, verifies the header matches the requested spec and base seed,
folds the completed seeds into the aggregate, and only runs what is left.

Merging
-------

Because records are keyed by seed and aggregation is order-independent,
checkpoints written by *different* workers compose: :func:`merge_checkpoints`
folds any number of files covering sub-ranges of one campaign into a single
:class:`~repro.campaigns.aggregate.CampaignResult` whose ``outcome_digest``
is bit-identical to a single-machine run of the whole range.  Duplicate
records for a seed (an overlap between a killed worker's partial file and
the re-issued lease's complete one) are deduplicated — trials are seed-pure,
so any record for a seed equals any other; two records that *disagree* on a
seed's outcome code can only mean corruption and raise
:class:`CheckpointConflict`.  This is the foundation of the distributed
coordinator (:mod:`repro.campaigns.distributed`).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import faults

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointConflict",
    "CheckpointCorruption",
    "CheckpointWriter",
    "load_checkpoint",
    "merge_checkpoints",
    "read_jsonl",
    "record_crc",
    "summarize_checkpoint",
    "summarize_merged",
]

CHECKPOINT_SCHEMA = "campaign-checkpoint/v1"


class CheckpointConflict(ValueError):
    """Two checkpoint records claim the same seed with different codes.

    Trials are pure functions of their seed, so honest re-runs always
    reproduce the same record; a conflict means one of the files is
    corrupted (or was produced by a different spec smuggled under the
    same header) and the merge must not silently pick a side.
    """


class CheckpointCorruption(ValueError):
    """An interior checkpoint line is torn or fails its CRC.

    Unlike a torn *final* line (the ordinary kill-mid-write signature,
    which is dropped and re-run), interior damage means the file was
    altered after writing — resume and merge must stop rather than build
    a digest over data that is missing or wrong.
    """

    def __init__(self, path: str, line_number: int, reason: str):
        super().__init__(f"{path}:{line_number}: {reason}")
        self.path = path
        self.line_number = line_number
        self.reason = reason


def record_crc(record: Dict[str, object]) -> int:
    """CRC32 of a record's canonical JSON form (sans any ``crc`` field)."""
    if "crc" in record:
        record = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(json.dumps(record, sort_keys=True).encode())


class CheckpointWriter:
    """Append-only JSONL writer with a one-line header for fresh files.

    Every record line carries a ``crc`` field (:func:`record_crc`).  When
    appending to an existing file, a torn final line — a kill arrived
    mid-``write()`` — is *truncated away* rather than newline-terminated:
    readers drop unterminated final lines anyway (the seed re-runs), and
    truncation keeps the file free of interior garbage that strict
    readers would have to treat as corruption.
    """

    def __init__(self, path: str, header: Dict[str, object], fresh: bool):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if fresh or not os.path.exists(path):
            self._handle = open(path, "w")
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._handle.flush()
        else:
            _truncate_torn_final_line(path)
            self._handle = open(path, "a")
        # Set after an injected torn write: (file offset of the intact
        # tail, the full batch that should have been written).  The next
        # write repairs the tear and replays the batch, exactly as a
        # resumed process re-running the lost shard would.
        self._torn: Optional[Tuple[int, str]] = None

    def write_records(self, records: Iterable[Dict[str, object]]) -> None:
        if self._torn is not None:
            offset, replay = self._torn
            self._torn = None
            self._handle.flush()
            self._handle.truncate(offset)
            self._handle.seek(offset)  # truncate() does not move the cursor
            self._handle.write(replay)
        lines = []
        for record in records:
            stamped = dict(record)
            stamped["crc"] = record_crc(record)
            lines.append(json.dumps(stamped, sort_keys=True) + "\n")
        data = "".join(lines)
        if lines and faults.fire("checkpoint.torn"):
            # Crash mid-write: everything but part of the final line lands
            # on disk.  The torn fragment is repaired (and the batch
            # replayed) on the next write, or dropped by readers if the
            # process really dies here.
            self._handle.flush()
            offset = self._handle.tell()
            cut = len(data) - max(1, len(lines[-1]) // 2)
            self._handle.write(data[:cut])
            self._handle.flush()
            self._torn = (offset, data)
            raise faults.InjectedCrash(
                f"{self.path}: injected torn checkpoint write"
            )
        self._handle.write(data)
        self._handle.flush()

    def close(self) -> None:
        if self._torn is not None:
            offset, replay = self._torn
            self._torn = None
            self._handle.flush()
            self._handle.truncate(offset)
            self._handle.seek(offset)  # truncate() does not move the cursor
            self._handle.write(replay)
            self._handle.flush()
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _truncate_torn_final_line(path: str) -> None:
    """Drop an unterminated final line (kill-mid-write residue) in place."""
    with open(path, "rb") as handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return
        # Scan backwards for the last newline; everything after it is the
        # torn fragment.
        keep = 0
        offset = size
        while offset > 0:
            step = min(4096, offset)
            handle.seek(offset - step)
            block = handle.read(step)
            newline = block.rfind(b"\n")
            if newline != -1:
                keep = offset - step + newline + 1
                break
            offset -= step
    os.truncate(path, keep)


def read_jsonl(
    path: str, keep, strict: bool = False
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """JSONL reader shared by checkpoints and lease journals.

    ``(header, records)`` where the header is line 0 when it is an object
    with a ``schema`` key, and ``keep(payload)`` filters the remaining
    lines.  Returns ``(None, [])`` for a missing file.  The single place
    the torn-line tolerance rules live:

    * a **final** line without its newline is torn by definition (a kill
      arrived mid-write) and is dropped in both modes — even if the
      fragment happens to parse, so readers agree with the writer's
      truncate-on-append repair;
    * lines carrying a ``crc`` field are verified against
      :func:`record_crc`;
    * in forgiving mode (default) blank, unparsable, non-object and
      CRC-failing lines are skipped — the right stance while another
      process may still be appending;
    * in ``strict`` mode an *interior* unparsable or CRC-failing line
      raises :class:`CheckpointCorruption` with its 1-indexed line number
      — the right stance when resuming or merging, where a skipped line
      is silently lost work.
    """
    if not os.path.exists(path):
        return None, []
    header: Optional[Dict[str, object]] = None
    records: List[Dict[str, object]] = []
    with open(path, "rb") as handle:
        raw_lines = handle.readlines()
    if raw_lines and not raw_lines[-1].endswith(b"\n"):
        raw_lines.pop()  # torn final line: dropped, its seed re-runs
    for i, raw in enumerate(raw_lines):
        line = raw.strip()
        if not line:
            continue
        try:
            payload = json.loads(line.decode("utf-8", errors="strict"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if strict:
                raise CheckpointCorruption(
                    path, i + 1, "unparsable (torn) interior line"
                )
            continue
        if not isinstance(payload, dict):
            if strict:
                raise CheckpointCorruption(
                    path, i + 1, f"expected a JSON object, got {type(payload).__name__}"
                )
            continue
        if "crc" in payload:
            stored = payload.pop("crc")
            if stored != record_crc(payload):
                if strict:
                    raise CheckpointCorruption(
                        path,
                        i + 1,
                        f"CRC mismatch (stored {stored}, "
                        f"computed {record_crc(payload)})",
                    )
                continue
        if i == 0 and "schema" in payload:
            header = payload
            continue
        if keep(payload):
            records.append(payload)
    return header, records


def load_checkpoint(
    path: str, strict: bool = False
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """Read ``(header, records)`` from a checkpoint file.

    Returns ``(None, [])`` when the file does not exist.  A torn *final*
    line (the kill-mid-write signature) is always dropped; with
    ``strict=True`` — every resume and merge path — a torn or CRC-failing
    *interior* line raises :class:`CheckpointCorruption` instead of being
    skipped.  Lines without an integer ``seed`` and ``code`` are ignored
    as malformed.
    """
    return read_jsonl(
        path,
        lambda payload: isinstance(payload.get("seed"), int)
        and isinstance(payload.get("code"), int),
        strict=strict,
    )


def summarize_checkpoint(path: str, strict: bool = False):
    """``(header, Aggregator)`` for an existing checkpoint, no re-running.

    Folds every record of the file into a fresh
    :class:`~repro.campaigns.aggregate.Aggregator`, exactly as a resumed
    campaign would — so the digest, counts and latency percentiles equal
    the live run's for a complete checkpoint, and ``pending_seeds()``
    tells how much of an interrupted one is missing.  Raises
    :class:`ValueError` when the file is missing or has no header line.
    """
    from .aggregate import Aggregator

    if not os.path.exists(path):
        raise ValueError(f"{path}: no such checkpoint file")
    header, records = load_checkpoint(path, strict=strict)
    if header is None:
        raise ValueError(
            f"{path}: not a campaign checkpoint (no {CHECKPOINT_SCHEMA} header)"
        )
    label = _spec_label(header.get("spec") or {})
    base_seed = int(header.get("base_seed", 0))
    trials = int(header.get("trials", len(records)))
    aggregator = Aggregator(label, base_seed, trials)
    for record in records:
        aggregator.add(record)
    return header, aggregator


def _spec_label(spec: Dict[str, object]) -> str:
    """The report label a spec dict implies (mirrors ``CampaignSpec.label``)."""
    return (
        spec.get("variant")
        if spec.get("kind") == "validation"
        else spec.get("kind") or spec.get("label")
    ) or "campaign"


def _merge(
    paths: Sequence[str],
    base_seed: Optional[int],
    trials: Optional[int],
    collect_records: bool,
):
    """Shared merge core: ``(merged_header, Aggregator, deduped records)``.

    Every path must exist, carry a header, and agree on ``spec`` with the
    others; ``base_seed``/``trials`` may differ per file (workers checkpoint
    sub-ranges).  The merged span defaults to the union of the files' spans
    — pass ``base_seed``/``trials`` explicitly to pin the campaign's full
    range, so seeds no file covers stay visibly pending (and change the
    digest) instead of silently shrinking the campaign.
    """
    from .aggregate import Aggregator

    if not paths:
        raise ValueError("merge_checkpoints needs at least one checkpoint path")
    loaded = []
    spec: Optional[Dict[str, object]] = None
    for path in paths:
        if not os.path.exists(path):
            raise ValueError(f"{path}: no such checkpoint file")
        # Strict: a merge that silently skipped a corrupted interior line
        # would compute a digest over silently-missing work.
        header, records = load_checkpoint(path, strict=True)
        if header is None:
            raise ValueError(
                f"{path}: not a campaign checkpoint "
                f"(no {CHECKPOINT_SCHEMA} header)"
            )
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"{path}: checkpoint schema {header.get('schema')!r} is not "
                f"{CHECKPOINT_SCHEMA!r}"
            )
        if spec is None:
            spec = header.get("spec") or {}
        elif (header.get("spec") or {}) != spec:
            raise ValueError(
                f"{path}: checkpoint spec {header.get('spec')!r} differs from "
                f"{spec!r} in {paths[0]}; refusing to merge different campaigns"
            )
        loaded.append((path, header, records))

    if base_seed is None:
        base_seed = min(int(header["base_seed"]) for _p, header, _r in loaded)
    if trials is None:
        end = max(
            int(header["base_seed"]) + int(header["trials"])
            for _p, header, _r in loaded
        )
        trials = end - base_seed

    aggregator = Aggregator(_spec_label(spec), base_seed, trials)
    kept: List[Dict[str, object]] = []
    for path, _header, records in loaded:
        for record in records:
            existing = aggregator.code_at(record["seed"])
            if existing and record["code"] != existing:
                raise CheckpointConflict(
                    f"{path}: seed {record['seed']} recorded with code "
                    f"{record['code']}, but an earlier file recorded code "
                    f"{existing}"
                )
            if aggregator.add(record) and collect_records:
                kept.append(record)
    merged_header = {
        "schema": CHECKPOINT_SCHEMA,
        "spec": spec,
        "base_seed": base_seed,
        "trials": trials,
        "merged_from": len(paths),
    }
    return merged_header, aggregator, kept


def summarize_merged(
    paths: Sequence[str],
    base_seed: Optional[int] = None,
    trials: Optional[int] = None,
):
    """``(merged_header, Aggregator)`` over several checkpoints, no re-running.

    The multi-file analogue of :func:`summarize_checkpoint` (used by
    ``repro report --merge``): duplicates are deduplicated, conflicting
    records raise :class:`CheckpointConflict`.
    """
    header, aggregator, _records = _merge(
        paths, base_seed, trials, collect_records=False
    )
    return header, aggregator


def merge_checkpoints(
    paths: Sequence[str],
    merged_path: Optional[str] = None,
    base_seed: Optional[int] = None,
    trials: Optional[int] = None,
):
    """Merge worker checkpoints into one :class:`CampaignResult`.

    The aggregate is order-independent, so for files that partition a
    campaign's seed range the result — ``outcome_digest`` included — is
    bit-identical to running the whole campaign on one machine.  With
    ``merged_path`` the deduplicated records are also written out as a
    normal ``campaign-checkpoint/v1`` file (seed-sorted, so the merged
    file is canonical), ready for ``repro report`` or further merging.
    """
    header, aggregator, records = _merge(
        paths, base_seed, trials, collect_records=merged_path is not None
    )
    if merged_path is not None:
        with CheckpointWriter(merged_path, header, fresh=True) as writer:
            writer.write_records(sorted(records, key=lambda r: r["seed"]))
    return aggregator.finalize()
