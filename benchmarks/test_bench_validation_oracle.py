"""Experiment V-ORA (Section 4): validation against the Oracle dialect.

Same workload as V-PG, with the standard (Figures 4–7) semantics plus the
compile-time ambiguity check, against the name-based-star engine dialect.

Paper result: always the same results; "for some queries involving SELECT *
Oracle raised an error due to presence of ambiguous references; in each of
these cases, our implementation (the variant adjusted for Oracle) also
raised an error" — so the campaign must show (a) full agreement and (b) a
non-empty both-error class.
"""

import os

from repro.generator import DataFillerConfig
from repro.validation import ValidationRunner, format_campaigns

from .conftest import print_banner, trials


def run_campaign():
    rows = int(os.environ.get("REPRO_ROWS", "6"))
    runner = ValidationRunner(
        variant="oracle", data_config=DataFillerConfig(max_rows=rows)
    )
    return runner, runner.run(trials=trials(300), base_seed=0)


def test_bench_validation_oracle(benchmark):
    runner, report = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    print_banner(
        "V-ORA — Section 4 validation, Oracle variant "
        "(paper: full agreement incl. matched ambiguity errors)"
    )
    print(format_campaigns([report]))
    for mismatch in report.mismatches[:5]:
        print(runner.explain(mismatch))
    assert report.agreements == report.trials
    # The ambiguity-error class must be exercised and matched:
    assert report.error_agreements > 0
