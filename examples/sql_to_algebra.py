"""Theorem 1 in action: translate basic SQL to relational algebra.

Takes the data manipulation queries of Example 1 (Q1 and Q3), translates
them through the Figure 9 pipeline into SQL-RA, desugars the SQL-RA
extensions into pure relational algebra (Proposition 2 — semijoins and
antijoins over the syntactic natural join), evaluates everything, and
confirms that all stages agree with the SQL semantics.

Run:  python examples/sql_to_algebra.py
"""

from repro import NULL, Database, Schema, SqlSemantics, annotate
from repro.algebra import (
    RASemantics,
    desugar,
    is_pure,
    print_expression,
    print_expression_tree,
    to_sqlra,
)

schema = Schema({"R": ("A",), "S": ("A",)})
db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})

sql_semantics = SqlSemantics(schema)
ra_semantics = RASemantics(schema)

QUERIES = {
    "Q1": "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
    "Q3": "SELECT R.A FROM R EXCEPT SELECT S.A FROM S",
}

for name, text in QUERIES.items():
    print(f"\n=== {name}: {text}")
    query = annotate(text, schema)
    expected = sql_semantics.run(query, db)
    print(f"SQL result: {sorted(expected.bag, key=repr)}")

    # Stage 1 — Figure 9: SQL → SQL-RA (∈ / empty conditions allowed).
    sqlra = to_sqlra(query, schema)
    print(f"\nSQL-RA (Figure 9):\n  {print_expression(sqlra)}")
    stage1 = ra_semantics.evaluate(sqlra, db)
    assert stage1.same_as(expected)

    # Stage 2 — Proposition 2: desugar to *pure* relational algebra.
    pure = desugar(sqlra, schema)
    assert is_pure(pure)
    print("\nPure RA (Proposition 2), as a tree:")
    print(print_expression_tree(pure))
    stage2 = ra_semantics.evaluate(pure, db)
    assert stage2.same_as(expected)
    print(f"\nPure-RA result: {sorted(stage2.bag, key=repr)}  (agrees ✓)")

print(
    "\nBoth queries translate to relational algebra and agree with the SQL\n"
    "semantics — including the NOT IN query whose three-valued behaviour\n"
    "(unknown from comparing with NULL) survives the translation."
)
