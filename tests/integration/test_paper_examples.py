"""The paper's worked examples, end to end from SQL text, on every pipeline."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import AmbiguousReferenceError
from repro.algebra import RASemantics, is_pure, sql_to_ra
from repro.engine import Engine
from repro.semantics import (
    STAR_COMPOSITIONAL,
    STAR_STANDARD,
    SqlSemantics,
    TwoValuedTranslator,
)
from repro.sql import annotate, check_query

Q1 = "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"
Q2 = (
    "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
    "(SELECT * FROM S WHERE S.A = R.A)"
)
Q3 = "SELECT R.A FROM R EXCEPT SELECT S.A FROM S"


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A",)})


@pytest.fixture
def db(schema):
    """Example 1: R = {1, NULL}, S = {NULL}."""
    return Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})


class TestExample1:
    """Q1(D) = ∅, Q2(D) = {1, NULL}, Q3(D) = {1} — three inequivalent ways
    of writing difference in the presence of nulls."""

    def results(self, schema, db, evaluator):
        out = {}
        for name, text in [("Q1", Q1), ("Q2", Q2), ("Q3", Q3)]:
            out[name] = sorted(evaluator(annotate(text, schema), db).bag, key=repr)
        return out

    def expected(self):
        return {"Q1": [], "Q2": [(1,), (NULL,)], "Q3": [(1,)]}

    def test_formal_semantics_standard(self, schema, db):
        sem = SqlSemantics(schema, star_style=STAR_STANDARD)
        assert self.results(schema, db, sem.run) == self.expected()

    def test_formal_semantics_compositional(self, schema, db):
        sem = SqlSemantics(schema, star_style=STAR_COMPOSITIONAL)
        assert self.results(schema, db, sem.run) == self.expected()

    def test_engine_postgres(self, schema, db):
        engine = Engine(schema, "postgres")
        assert self.results(schema, db, engine.execute) == self.expected()

    def test_engine_oracle(self, schema, db):
        engine = Engine(schema, "oracle")
        assert self.results(schema, db, engine.execute) == self.expected()

    def test_relational_algebra_q1_q3(self, schema, db):
        """Q1 and Q3 are data manipulation queries; their RA translations
        produce the same (non-equivalent!) results."""
        ra = RASemantics(schema)
        e1 = sql_to_ra(annotate(Q1, schema), schema)
        e3 = sql_to_ra(annotate(Q3, schema), schema)
        assert is_pure(e1) and is_pure(e3)
        assert ra.evaluate(e1, db).is_empty()
        assert sorted(ra.evaluate(e3, db).bag) == [(1,)]

    def test_two_valued_translations(self, schema, db):
        for mode in ("conflating", "syntactic"):
            translator = TwoValuedTranslator(schema, mode)
            sem2 = SqlSemantics(schema, logic=translator.logic)
            for text, expected in zip(
                (Q1, Q2, Q3), ([], [(1,), (NULL,)], [(1,)])
            ):
                q = annotate(text, schema)
                translated = translator.translate_query(q)
                assert sorted(sem2.run(translated, db).bag, key=repr) == expected

    def test_queries_inequivalent_with_nulls_equivalent_without(self, schema):
        """On null-free databases the three queries *do* agree."""
        clean = Database(schema, {"R": [(1,), (2,)], "S": [(2,)]})
        sem = SqlSemantics(schema)
        results = [
            sorted(sem.run(annotate(t, schema), clean).bag) for t in (Q1, Q2, Q3)
        ]
        assert results[0] == results[1] == results[2] == [(1,)]


class TestExample2:
    """SELECT * over duplicated columns: dialect-divergent behaviour."""

    STANDALONE = "SELECT * FROM (SELECT R.A, R.A FROM R) AS T"
    NESTED = (
        "SELECT * FROM R WHERE EXISTS "
        "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T)"
    )

    def test_standard_semantics_rejects_standalone(self, schema, db):
        q = annotate(self.STANDALONE, schema)
        with pytest.raises(AmbiguousReferenceError):
            check_query(q, schema, star_style="standard")
        with pytest.raises(AmbiguousReferenceError):
            SqlSemantics(schema, star_style=STAR_STANDARD).run(q, db)

    def test_compositional_semantics_accepts_standalone(self, schema, db):
        q = annotate(self.STANDALONE, schema)
        check_query(q, schema, star_style="compositional")
        t = SqlSemantics(schema, star_style=STAR_COMPOSITIONAL).run(q, db)
        assert t.columns == ("A", "A")
        assert sorted(t.bag, key=repr) == [(1, 1), (NULL, NULL)]

    def test_both_accept_nested_under_exists(self, schema, db):
        q = annotate(self.NESTED, schema)
        for style in (STAR_STANDARD, STAR_COMPOSITIONAL):
            check_query(q, schema, star_style="standard" if style == STAR_STANDARD else "compositional")
            t = SqlSemantics(schema, star_style=style).run(q, db)
            # outputs R whenever R is nonempty
            assert sorted(t.bag, key=repr) == [(1,), (NULL,)]

    def test_engines_mirror_the_dialects(self, schema, db):
        pg, ora = Engine(schema, "postgres"), Engine(schema, "oracle")
        q = annotate(self.STANDALONE, schema)
        assert pg.execute(q, db).columns == ("A", "A")
        with pytest.raises(AmbiguousReferenceError):
            ora.execute(q, db)
        nested = annotate(self.NESTED, schema)
        assert len(pg.execute(nested, db)) == 2
        assert len(ora.execute(nested, db)) == 2


class TestNotInVersusNotExistsRewriting:
    """Section 1/7: rewriting NOT IN as NOT EXISTS — the textbook translation
    the paper shows to be wrong under nulls — is validated here as wrong."""

    def test_rewriting_changes_results(self, schema, db):
        sem = SqlSemantics(schema)
        not_in = sem.run(annotate(Q1, schema), db)
        not_exists = sem.run(annotate(Q2, schema), db)
        assert not not_in.same_as(not_exists)
