"""Schemas and database instances (Section 2)."""

import pytest

from repro.core.errors import SchemaError, UnknownTableError
from repro.core.schema import Database, Schema, validation_schema
from repro.core.values import NULL


def test_schema_attributes():
    schema = Schema({"R": ("A", "B")})
    assert schema.attributes("R") == ("A", "B")
    assert schema.arity("R") == 2
    assert "R" in schema and "S" not in schema


def test_schema_rejects_empty_attribute_list():
    with pytest.raises(SchemaError):
        Schema({"R": ()})


def test_schema_rejects_repeated_attributes():
    """Base tables have distinct attribute names (the paper's assumption)."""
    with pytest.raises(SchemaError):
        Schema({"R": ("A", "A")})


def test_schema_unknown_table():
    with pytest.raises(UnknownTableError):
        Schema({"R": ("A",)}).attributes("S")


def test_database_provides_tables_with_schema_labels():
    schema = Schema({"R": ("A", "B")})
    db = Database(schema, {"R": [(1, NULL)]})
    table = db.table("R")
    assert table.columns == ("A", "B")
    assert table.multiplicity((1, NULL)) == 1


def test_database_defaults_missing_tables_to_empty():
    schema = Schema({"R": ("A",), "S": ("B",)})
    db = Database(schema, {"R": [(1,)]})
    assert db.table("S").is_empty()


def test_database_rejects_wrong_arity():
    schema = Schema({"R": ("A",)})
    with pytest.raises(SchemaError):
        Database(schema, {"R": [(1, 2)]})


def test_database_rejects_undeclared_tables():
    schema = Schema({"R": ("A",)})
    with pytest.raises(SchemaError):
        Database(schema, {"X": [(1,)]})


def test_database_unknown_table_lookup():
    schema = Schema({"R": ("A",)})
    with pytest.raises(UnknownTableError):
        Database(schema).table("S")


def test_database_keeps_duplicates():
    schema = Schema({"R": ("A",)})
    db = Database(schema, {"R": [(1,), (1,)]})
    assert db.table("R").multiplicity((1,)) == 2


def test_validation_schema_shape():
    """Section 4: R1..R8 where Ri has i+1 int attributes."""
    schema = validation_schema()
    assert schema.table_names == tuple(f"R{i}" for i in range(1, 9))
    for i in range(1, 9):
        assert schema.arity(f"R{i}") == i + 1
        assert schema.attributes(f"R{i}")[0] == "A1"


def test_validation_schema_custom_size():
    assert validation_schema(3).table_names == ("R1", "R2", "R3")
    with pytest.raises(ValueError):
        validation_schema(0)


def test_schema_equality_and_repr():
    a = Schema({"R": ("A",)})
    b = Schema({"R": ("A",)})
    assert a == b
    assert "R(A)" in repr(a)
