"""FROM items with column-alias lists (``T AS N(A1, …, An)``) end to end.

Figure 10's translation depends on this construct; it must behave
identically across the formal semantics (both star styles) and the engine
(both dialects)."""

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import Engine
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B")})


@pytest.fixture
def db(schema):
    return Database(schema, {"R": [(1, 2), (NULL, 4)]})


ALL_IMPLEMENTATIONS = [
    ("sem-standard", lambda s: SqlSemantics(s, star_style=STAR_STANDARD).run),
    ("sem-compositional", lambda s: SqlSemantics(s, star_style=STAR_COMPOSITIONAL).run),
    ("engine-pg", lambda s: Engine(s, "postgres").execute),
    ("engine-ora", lambda s: Engine(s, "oracle").execute),
]


@pytest.mark.parametrize("name,factory", ALL_IMPLEMENTATIONS)
def test_column_aliases_rename_for_references(name, factory, schema, db):
    q = annotate(
        "SELECT N.X FROM (SELECT R.A, R.B FROM R) AS N(X, Y) WHERE N.Y = 2",
        schema,
    )
    t = factory(schema)(q, db)
    assert t.columns == ("X",)
    assert sorted(t.bag) == [(1,)]


@pytest.mark.parametrize("name,factory", ALL_IMPLEMENTATIONS)
def test_column_aliases_on_base_table(name, factory, schema, db):
    q = annotate("SELECT N.P FROM R AS N(P, Q)", schema)
    t = factory(schema)(q, db)
    assert t.columns == ("P",)
    assert len(t) == 2


@pytest.mark.parametrize("name,factory", ALL_IMPLEMENTATIONS)
def test_star_over_column_aliases(name, factory, schema, db):
    q = annotate("SELECT * FROM R AS N(P, Q)", schema)
    t = factory(schema)(q, db)
    assert t.columns == ("P", "Q")


@pytest.mark.parametrize("name,factory", ALL_IMPLEMENTATIONS)
def test_aliases_deduplicate_repeated_subquery_columns(name, factory, schema, db):
    """Renaming duplicated subquery columns apart makes them referencable —
    the trick Figure 10's f-translation of IN relies on."""
    q = annotate(
        "SELECT N.X1, N.X2 FROM (SELECT R.A, R.A FROM R) AS N(X1, X2)",
        schema,
    )
    t = factory(schema)(q, db)
    assert t.columns == ("X1", "X2")
    assert t.multiplicity((1, 1)) == 1
    assert t.multiplicity((NULL, NULL)) == 1


def test_old_names_not_visible_after_aliasing(schema, db):
    from repro.core.errors import UnboundReferenceError
    from repro.sql import check_query

    q = annotate("SELECT N.P FROM R AS N(P, Q)", schema)
    # manually reference the old name N.A: must not resolve
    from repro.core.values import FullName
    from repro.sql.ast import Select, SelectItem

    bad = Select(
        (SelectItem(FullName("N", "A"), "A"),), q.from_items, q.where
    )
    with pytest.raises(UnboundReferenceError):
        check_query(bad, schema)
    with pytest.raises(UnboundReferenceError):
        SqlSemantics(schema).run(bad, db)
