"""Recursive-descent parser for the basic SQL fragment (Figure 2).

The parser accepts *surface* syntax — aliases may be omitted for base tables,
column references may be unqualified, WHERE may be absent — and produces the
AST of :mod:`repro.sql.ast`.  The annotation pass (:mod:`repro.sql.annotate`)
then produces the fully-annotated form the formal semantics consumes.

Set-operation precedence follows the SQL standard: INTERSECT binds tighter
than UNION and EXCEPT, which associate to the left.  ``MINUS`` is accepted as
a synonym for ``EXCEPT`` (Oracle's syntax, Section 4).

Anything outside the fragment (aggregation, GROUP BY, ORDER BY, JOIN syntax,
…) is rejected with a :class:`~repro.core.errors.ParseError` naming the
offending token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ParseError
from ..core.values import NULL, FullName, Term
from .ast import (
    And,
    BareColumn,
    Condition,
    Exists,
    FALSE_COND,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
)
from .lexer import Token, tokenize

__all__ = ["parse_query", "parse_condition", "Parser"]


#: Which spelling(s) of the difference operation each dialect accepts.
#: ``standard`` is lenient (both), matching the repository's printers being
#: able to round-trip any dialect's output.
_DIFFERENCE_KEYWORDS = {
    "standard": frozenset({"EXCEPT", "MINUS"}),
    "postgres": frozenset({"EXCEPT"}),
    "oracle": frozenset({"MINUS"}),
    "mysql": frozenset(),  # MySQL "does not have it altogether" (Section 4)
}


def parse_query(text: str, dialect: str = "standard") -> Query:
    """Parse SQL text into a (surface) query AST.

    ``dialect`` controls the accepted spelling of the difference operation:
    Oracle only knows ``MINUS``, PostgreSQL only ``EXCEPT``, MySQL neither,
    and the default ``standard`` mode leniently accepts both.
    """
    parser = Parser(tokenize(text), dialect=dialect)
    query = parser.query()
    parser.expect_eof()
    return query


def parse_condition(text: str, dialect: str = "standard") -> Condition:
    """Parse a standalone condition (useful in tests and tools)."""
    parser = Parser(tokenize(text), dialect=dialect)
    condition = parser.condition()
    parser.expect_eof()
    return condition


class Parser:
    """A backtracking recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token], dialect: str = "standard"):
        if dialect not in _DIFFERENCE_KEYWORDS:
            raise ValueError(
                f"unknown dialect {dialect!r}; expected one of "
                f"{sorted(_DIFFERENCE_KEYWORDS)}"
            )
        self._tokens = tokens
        self._pos = 0
        self._difference_keywords = _DIFFERENCE_KEYWORDS[dialect]

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: str | None = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted}, found {token.value or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(
                f"unexpected input after query: {token.value!r}",
                token.line,
                token.column,
            )

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- queries ---------------------------------------------------------------

    def query(self) -> Query:
        """UNION/EXCEPT level (lowest precedence, left-associative)."""
        left = self._intersect_query()
        while True:
            if self._accept("KEYWORD", "UNION"):
                op = "UNION"
            elif self._check("KEYWORD", "EXCEPT") or self._check("KEYWORD", "MINUS"):
                keyword = self._peek().value
                if keyword not in self._difference_keywords:
                    raise self._error(
                        f"{keyword} is not available in this dialect"
                    )
                self._advance()
                op = "EXCEPT"
            else:
                return left
            all_flag = self._accept("KEYWORD", "ALL") is not None
            right = self._intersect_query()
            left = SetOp(op, left, right, all=all_flag)

    def _intersect_query(self) -> Query:
        left = self._primary_query()
        while self._accept("KEYWORD", "INTERSECT"):
            all_flag = self._accept("KEYWORD", "ALL") is not None
            right = self._primary_query()
            left = SetOp("INTERSECT", left, right, all=all_flag)
        return left

    def _primary_query(self) -> Query:
        if self._accept("SYMBOL", "("):
            query = self.query()
            self._expect("SYMBOL", ")")
            return query
        if self._check("KEYWORD", "SELECT"):
            return self._select()
        raise self._error("expected SELECT or a parenthesized query")

    def _select(self) -> Select:
        self._expect("KEYWORD", "SELECT")
        distinct = self._accept("KEYWORD", "DISTINCT") is not None
        if self._accept("KEYWORD", "ALL"):
            distinct = False
        if self._accept("SYMBOL", "*"):
            items: object = STAR
        else:
            select_items = [self._select_item()]
            while self._accept("SYMBOL", ","):
                select_items.append(self._select_item())
            items = tuple(select_items)
        self._expect("KEYWORD", "FROM")
        from_items = [self._from_item()]
        while self._accept("SYMBOL", ","):
            from_items.append(self._from_item())
        if self._accept("KEYWORD", "WHERE"):
            where = self.condition()
        else:
            where = TRUE_COND
        return Select(items, tuple(from_items), where, distinct=distinct)

    def _select_item(self) -> SelectItem:
        term = self._term()
        if self._accept("KEYWORD", "AS"):
            alias = self._name()
        elif self._check("IDENT"):
            alias = self._name()
        else:
            alias = ""  # resolved by the annotation pass
        return SelectItem(term, alias)

    def _from_item(self) -> FromItem:
        if self._accept("SYMBOL", "("):
            table: object = self.query()
            self._expect("SYMBOL", ")")
            alias_required = True
        else:
            table = self._name()
            alias_required = False
        alias = ""
        if self._accept("KEYWORD", "AS"):
            alias = self._name()
        elif self._check("IDENT"):
            alias = self._name()
        column_aliases: Optional[Tuple[str, ...]] = None
        if alias and self._accept("SYMBOL", "("):
            names = [self._name()]
            while self._accept("SYMBOL", ","):
                names.append(self._name())
            self._expect("SYMBOL", ")")
            column_aliases = tuple(names)
        if not alias:
            if alias_required:
                raise self._error("a subquery in FROM requires an alias")
            alias = table  # R AS R, the standard annotation
        return FromItem(table, alias, column_aliases)

    def _name(self) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return token.value
        raise self._error(f"expected an identifier, found {token.value!r}")

    # -- terms -------------------------------------------------------------------

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "INT":
            self._advance()
            return int(token.value)
        if token.kind == "STRING":
            self._advance()
            return token.value
        if token.matches("KEYWORD", "NULL"):
            self._advance()
            return NULL
        if token.kind == "IDENT":
            self._advance()
            if self._accept("SYMBOL", "."):
                attribute = self._name()
                return FullName(token.value, attribute)
            return BareColumn(token.value)
        raise self._error(f"expected a term, found {token.value or token.kind!r}")

    # -- conditions -----------------------------------------------------------------

    def condition(self) -> Condition:
        """OR level (lowest precedence)."""
        left = self._and_condition()
        while self._accept("KEYWORD", "OR"):
            right = self._and_condition()
            left = Or(left, right)
        return left

    def _and_condition(self) -> Condition:
        left = self._not_condition()
        while self._accept("KEYWORD", "AND"):
            right = self._not_condition()
            left = And(left, right)
        return left

    def _not_condition(self) -> Condition:
        if self._accept("KEYWORD", "NOT"):
            return Not(self._not_condition())
        return self._primary_condition()

    def _primary_condition(self) -> Condition:
        token = self._peek()
        if token.matches("KEYWORD", "TRUE"):
            self._advance()
            return TRUE_COND
        if token.matches("KEYWORD", "FALSE"):
            self._advance()
            return FALSE_COND
        if token.matches("KEYWORD", "EXISTS"):
            self._advance()
            self._expect("SYMBOL", "(")
            query = self.query()
            self._expect("SYMBOL", ")")
            return Exists(query)
        if token.matches("SYMBOL", "("):
            # Ambiguity: '(' may open a row constructor or a parenthesized
            # condition.  Try the row reading first and backtrack on failure.
            saved = self._pos
            try:
                return self._row_condition()
            except ParseError:
                self._pos = saved
            self._advance()  # consume '('
            condition = self.condition()
            self._expect("SYMBOL", ")")
            return condition
        if token.kind == "IDENT" and self._peek(1).matches("SYMBOL", "("):
            # A named predicate P(t1, …, tk) from the collection P.
            name = self._name()
            self._expect("SYMBOL", "(")
            args = [self._term()]
            while self._accept("SYMBOL", ","):
                args.append(self._term())
            self._expect("SYMBOL", ")")
            return Predicate(name, tuple(args))
        return self._term_condition(self._term())

    def _row_condition(self) -> Condition:
        """Parse ``(t1, …, tn) <op> …`` where op is IN, IS or a comparison."""
        self._expect("SYMBOL", "(")
        terms = [self._term()]
        while self._accept("SYMBOL", ","):
            terms.append(self._term())
        self._expect("SYMBOL", ")")
        if len(terms) == 1:
            return self._term_condition(terms[0])
        return self._row_tail(tuple(terms))

    def _row_tail(self, terms: Tuple[Term, ...]) -> Condition:
        if self._accept("KEYWORD", "IS"):
            negated = self._accept("KEYWORD", "NOT") is not None
            self._expect("KEYWORD", "NULL")
            # t̄ IS [NOT] NULL: conjunction over the components (Figure 10).
            result: Condition = IsNull(terms[0], negated)
            for term in terms[1:]:
                result = And(result, IsNull(term, negated))
            return result
        negated = self._accept("KEYWORD", "NOT") is not None
        if self._accept("KEYWORD", "IN"):
            self._expect("SYMBOL", "(")
            query = self.query()
            self._expect("SYMBOL", ")")
            return InQuery(terms, query, negated)
        if negated:
            raise self._error("expected IN after NOT")
        op_token = self._peek()
        if op_token.kind == "SYMBOL" and op_token.value in ("=", "<>"):
            self._advance()
            self._expect("SYMBOL", "(")
            others = [self._term()]
            while self._accept("SYMBOL", ","):
                others.append(self._term())
            self._expect("SYMBOL", ")")
            if len(others) != len(terms):
                raise self._error("row comparison of different lengths")
            # Figure 6: (t̄ = s̄) is the conjunction of component equalities,
            # (t̄ <> s̄) the disjunction of component inequalities.
            pairs = list(zip(terms, others))
            if op_token.value == "=":
                result = Predicate("=", pairs[0])
                for pair in pairs[1:]:
                    result = And(result, Predicate("=", pair))
            else:
                result = Predicate("<>", pairs[0])
                for pair in pairs[1:]:
                    result = Or(result, Predicate("<>", pair))
            return result
        raise self._error("expected IN, IS or a row comparison")

    def _term_condition(self, term: Term) -> Condition:
        if self._accept("KEYWORD", "IS"):
            negated = self._accept("KEYWORD", "NOT") is not None
            self._expect("KEYWORD", "NULL")
            return IsNull(term, negated)
        negated = self._accept("KEYWORD", "NOT") is not None
        if self._accept("KEYWORD", "IN"):
            self._expect("SYMBOL", "(")
            query = self.query()
            self._expect("SYMBOL", ")")
            return InQuery((term,), query, negated)
        if self._accept("KEYWORD", "LIKE"):
            if negated:
                pattern = self._term()
                return Not(Predicate("LIKE", (term, pattern)))
            pattern = self._term()
            return Predicate("LIKE", (term, pattern))
        if negated:
            raise self._error("expected IN or LIKE after NOT")
        op_token = self._peek()
        if op_token.kind == "SYMBOL" and op_token.value in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._advance()
            right = self._term()
            return Predicate(op_token.value, (term, right))
        raise self._error(
            f"expected a comparison, IS, IN or LIKE, found "
            f"{op_token.value or op_token.kind!r}"
        )
