"""Environments and scoping in the evaluator: the η ⊕r̄ ℓ(τ:β) discipline.

These tests pin down the paper's variable-binding rules — the part
"normally disregarded by simplified semantics" — with hand-computed
denotations."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.env import Environment
from repro.core.values import FullName
from repro.semantics import SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"E": ("dept", "name"), "D": ("dept", "head")})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {
            "E": [(10, "ann"), (10, "bob"), (20, "cat"), (NULL, "dan")],
            "D": [(10, "ann"), (20, NULL)],
        },
    )


@pytest.fixture
def sem(schema):
    return SqlSemantics(schema)


def run(sem, schema, db, text):
    return sem.run(annotate(text, schema), db)


def test_parameter_flows_into_where_subquery(sem, schema, db):
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E WHERE EXISTS "
        "(SELECT D.head FROM D WHERE D.dept = E.dept)",
    )
    assert sorted(t.bag) == [("ann",), ("bob",), ("cat",)]


def test_parameter_three_valued_comparison(sem, schema, db):
    """The NULL dept of dan compares unknown against every D.dept."""
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E WHERE E.dept IN (SELECT D.dept FROM D)",
    )
    assert ("dan",) not in t.bag


def test_inner_binding_shadows_outer_same_alias(sem, schema, db):
    """Both blocks alias a table as X; the inner scope must win inside the
    subquery."""
    t = run(
        sem, schema, db,
        "SELECT X.name FROM E AS X WHERE EXISTS "
        "(SELECT X.head FROM D AS X WHERE X.dept = 20)",
    )
    # inner X ranges over D; condition holds for every outer row
    assert len(t) == 4


def test_outer_binding_visible_when_not_shadowed(sem, schema, db):
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E WHERE EXISTS "
        "(SELECT D.head FROM D WHERE D.dept = E.dept AND E.name = 'ann')",
    )
    assert sorted(t.bag) == [("ann",)]


def test_two_levels_of_correlation(sem, schema, db):
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E WHERE EXISTS ("
        "SELECT D.dept FROM D WHERE D.dept = E.dept AND EXISTS ("
        "SELECT D2.head FROM D AS D2 WHERE D2.head = E.name))",
    )
    assert sorted(t.bag) == [("ann",)]


def test_evaluate_with_explicit_environment(sem, schema, db):
    """⟦Q⟧_{D,η}: a parameterized query evaluated under an explicit η."""
    query = annotate("SELECT D.head FROM D WHERE D.dept = E.dept", schema)
    # strip the annotation's resolution: E.dept stays a parameter
    env = Environment.from_bindings((FullName("E", "dept"),), (20,))
    t = sem.evaluate(query, db, env)
    assert sorted(t.bag, key=repr) == [(NULL,)]


def test_parameterized_query_unbound_without_environment(sem, schema, db):
    from repro.core.errors import UnboundReferenceError
    from repro.sql.ast import FromItem, Predicate, Select, SelectItem

    query = Select(
        (SelectItem(FullName("D", "head"), "head"),),
        (FromItem("D", "D"),),
        Predicate("=", (FullName("D", "dept"), FullName("E", "dept"))),
    )
    with pytest.raises(UnboundReferenceError):
        sem.run(query, db)


def test_from_product_environment_not_leaked_to_siblings(sem, schema):
    """A FROM subquery is evaluated under the *outer* η, so a reference to a
    sibling's alias must fail at evaluation (and at annotation)."""
    from repro.core.errors import UnboundReferenceError
    from repro.sql.ast import FromItem, Select, SelectItem, TRUE_COND

    inner = Select(
        (SelectItem(FullName("X", "dept"), "d"),),
        (FromItem("D", "D2"),),
        TRUE_COND,
    )
    query = Select(
        (SelectItem(FullName("X", "name"), "n"),),
        (FromItem("E", "X"), FromItem(inner, "U")),
        TRUE_COND,
    )
    db = Database(schema, {"E": [(1, "a")], "D": [(1, "h")]})
    with pytest.raises(UnboundReferenceError):
        sem.run(query, db)


def test_where_evaluated_once_per_product_row_with_multiplicity(sem, schema):
    """⟦FROM-WHERE⟧ keeps k copies of a product row with multiplicity k."""
    db = Database(
        schema, {"E": [(1, "a"), (1, "a")], "D": [(1, "h"), (1, "h"), (1, "h")]}
    )
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E, D WHERE E.dept = D.dept",
    )
    assert t.multiplicity(("a",)) == 6


def test_select_list_evaluated_under_revised_environment(sem, schema, db):
    """The SELECT list sees η′ = η ⊕r̄ ℓ(τ:β), i.e. the row bindings."""
    t = run(
        sem, schema, db,
        "SELECT E.dept, E.name FROM E WHERE E.dept = 20",
    )
    assert sorted(t.bag) == [(20, "cat")]


def test_correlated_from_subquery_uses_outer_parameters(sem, schema, db):
    """Subqueries in FROM can be correlated with *enclosing* (not sibling)
    scopes — the paper's 'correlated subqueries in FROM'."""
    t = run(
        sem, schema, db,
        "SELECT E.name FROM E WHERE EXISTS ("
        "SELECT U.h FROM (SELECT D.head AS h FROM D WHERE D.dept = E.dept) AS U "
        "WHERE U.h = 'ann')",
    )
    assert sorted(t.bag) == [("ann",), ("bob",)]
