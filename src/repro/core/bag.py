"""Bags (multisets) of records and the bag operations of Section 3.

SQL tables are bags: the same record may occur several times, and the paper's
semantics is stated in terms of the multiplicity function ``#(r̄, T)``.  This
module implements:

* :class:`Bag` — an immutable multiset of records with deterministic
  (insertion-order) iteration;
* the bag operations the paper defines:

  - union:        ``#(t̄, T1 ∪ T2) = #(t̄, T1) + #(t̄, T2)``
  - intersection: ``#(t̄, T1 ∩ T2) = min(#(t̄, T1), #(t̄, T2))``
  - difference:   ``#(t̄, T1 − T2) = max(#(t̄, T1) − #(t̄, T2), 0)``
  - product:      ``#((t̄1 t̄2), T1 × T2) = #(t̄1, T1) · #(t̄2, T2)``
  - duplicate elimination ε: ``#(t̄, ε(T)) = min(#(t̄, T), 1)``

Records are compared with Python equality, which on values coincides with the
paper's syntactic equality — in particular NULL matches NULL, exactly as SQL's
set operations require (see Example 1's query Q3).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from .values import Record

__all__ = ["Bag"]


class Bag:
    """An immutable bag (multiset) of equal-length records.

    Iteration yields each record once per occurrence, grouped by record in
    first-insertion order; :meth:`counts` exposes the multiplicity map.  The
    empty bag has no intrinsic arity; a non-empty bag enforces that all its
    records have the same length.
    """

    __slots__ = ("_counts", "_arity", "_size", "_hash")

    def __init__(self, records: Iterable[Record] = ()):
        counts: Dict[Record, int] = {}
        arity: int | None = None
        size = 0
        for record in records:
            if not isinstance(record, tuple):
                raise TypeError(f"bag records must be tuples, got {type(record).__name__}")
            if arity is None:
                arity = len(record)
            elif len(record) != arity:
                raise ValueError(
                    f"records of mixed arity in bag: {arity} and {len(record)}"
                )
            counts[record] = counts.get(record, 0) + 1
            size += 1
        self._counts = counts
        self._arity = arity
        self._size = size
        self._hash = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_counts(cls, counts: Mapping[Record, int]) -> "Bag":
        """Build a bag from a multiplicity map, skipping zero multiplicities."""
        bag = cls.__new__(cls)
        clean: Dict[Record, int] = {}
        arity: int | None = None
        size = 0
        for record, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity {count} for {record!r}")
            if count == 0:
                continue
            if arity is None:
                arity = len(record)
            elif len(record) != arity:
                raise ValueError(
                    f"records of mixed arity in bag: {arity} and {len(record)}"
                )
            clean[record] = count
            size += count
        bag._counts = clean
        bag._arity = arity
        bag._size = size
        bag._hash = None
        return bag

    @classmethod
    def empty(cls) -> "Bag":
        return _EMPTY

    # -- inspection -----------------------------------------------------------

    def multiplicity(self, record: Record) -> int:
        """The paper's ``#(r̄, T)``: 0 if ``record`` does not occur."""
        return self._counts.get(record, 0)

    def counts(self) -> Mapping[Record, int]:
        """A read-only *view* of the multiplicity map (no copy).

        Hot in :meth:`repro.semantics.evaluator.SqlSemantics._from_where`,
        which walks the map of every FROM product; the proxy makes the call
        O(1) while still preventing callers from mutating the bag.
        """
        return MappingProxyType(self._counts)

    @property
    def arity(self) -> int | None:
        """Record length, or None for the empty bag."""
        return self._arity

    def __len__(self) -> int:
        """Total number of occurrences (with multiplicity)."""
        return self._size

    def distinct_size(self) -> int:
        """Number of distinct records."""
        return len(self._counts)

    def __iter__(self) -> Iterator[Record]:
        for record, count in self._counts.items():
            for _ in range(count):
                yield record

    def distinct(self) -> Iterator[Record]:
        """Iterate each distinct record once."""
        return iter(self._counts)

    def __contains__(self, record: Record) -> bool:
        return record in self._counts

    def is_empty(self) -> bool:
        return not self._counts

    # -- bag algebra (Section 3) ------------------------------------------------

    def _check_compatible(self, other: "Bag") -> None:
        if (
            self._arity is not None
            and other._arity is not None
            and self._arity != other._arity
        ):
            raise ValueError(
                f"bag operation on incompatible arities: {self._arity} vs {other._arity}"
            )

    def union(self, other: "Bag") -> "Bag":
        """Bag union (UNION ALL): multiplicities add up."""
        self._check_compatible(other)
        counts = dict(self._counts)
        for record, count in other._counts.items():
            counts[record] = counts.get(record, 0) + count
        return Bag.from_counts(counts)

    def intersection(self, other: "Bag") -> "Bag":
        """Bag intersection (INTERSECT ALL): pointwise minimum."""
        self._check_compatible(other)
        counts: Dict[Record, int] = {}
        for record, count in self._counts.items():
            other_count = other._counts.get(record, 0)
            if other_count:
                counts[record] = min(count, other_count)
        return Bag.from_counts(counts)

    def difference(self, other: "Bag") -> "Bag":
        """Bag difference (EXCEPT ALL): truncated subtraction."""
        self._check_compatible(other)
        counts: Dict[Record, int] = {}
        for record, count in self._counts.items():
            remaining = count - other._counts.get(record, 0)
            if remaining > 0:
                counts[record] = remaining
        return Bag.from_counts(counts)

    def product(self, other: "Bag") -> "Bag":
        """Cartesian product: concatenates records, multiplies multiplicities."""
        counts: Dict[Record, int] = {}
        for left, left_count in self._counts.items():
            for right, right_count in other._counts.items():
                counts[left + right] = left_count * right_count
        return Bag.from_counts(counts)

    def distinct_bag(self) -> "Bag":
        """Duplicate elimination ε: every multiplicity becomes 1."""
        return Bag.from_counts({record: 1 for record in self._counts})

    # -- convenience aliases matching the paper's notation -----------------------

    __add__ = union

    def __and__(self, other: "Bag") -> "Bag":
        return self.intersection(other)

    def __sub__(self, other: "Bag") -> "Bag":
        return self.difference(other)

    def __mul__(self, other: "Bag") -> "Bag":
        return self.product(other)

    # -- plumbing ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{record!r}: {count}" for record, count in sorted(
                self._counts.items(), key=lambda item: repr(item[0])
            )
        )
        return f"Bag({{{inner}}})"


_EMPTY = Bag()
