"""Importing real databases into scenarios.

Three source shapes are understood, dispatched on the path:

* ``*.sql`` — a SQL script (DDL + INSERTs) executed into a fresh in-memory
  SQLite database and then imported from there.  This is the shape of the
  committed test fixture (text diffs, no binary blobs in git).
* a directory — one ``*.csv`` file per table (header row = column names),
  with an optional ``fks.json`` sidecar listing foreign keys.
* anything else — an existing SQLite database file, opened read-only.

The importer maps the source into the repository's value domain (int | str |
NULL) with an explicit, documented policy:

* booleans become 0/1 (SQLite stores them that way already);
* columns containing floats or blobs are **dropped** (with a note) — the
  validated fragment has no arithmetic or binary values;
* a column mixing ints and strings is coerced to all-text (with a note), so
  every column is homogeneously typed and comparisons against sampled
  constants never hit the dialects' type-clash divergence by accident;
* tables left with no usable columns, and SQLite internal/shadow tables,
  are dropped (with a note).

Sources with 10⁴–10⁶ rows are handled by sampling: ``sample_rows`` caps each
table at its first N rows in ``rowid`` order (deterministic across runs).
Sampling can break referential integrity of *child* rows whose parents were
cut off; the FK edges are still reported (they describe the schema, not the
sample) and the generator treats them as join hints, not as guarantees.
"""

from __future__ import annotations

import csv
import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schema import Database, Schema
from ..core.values import NULL
from .scenario import TYPE_INT, TYPE_TEXT, ForeignKey, Scenario

__all__ = [
    "import_scenario",
    "import_sqlite",
    "import_csv_dir",
    "export_sqlite",
    "export_sql_script",
]


def import_scenario(
    path: str,
    sample_rows: int = 0,
    name: Optional[str] = None,
) -> Scenario:
    """Import a source picked by path shape (see module docstring).

    ``sample_rows <= 0`` means no cap.
    """
    p = Path(path)
    if p.is_dir():
        return import_csv_dir(p, sample_rows=sample_rows, name=name)
    if p.suffix.lower() == ".sql":
        conn = sqlite3.connect(":memory:")
        try:
            conn.executescript(p.read_text())
            return _import_connection(
                conn, source=name or str(path), sample_rows=sample_rows
            )
        finally:
            conn.close()
    return import_sqlite(p, sample_rows=sample_rows, name=name)


def import_sqlite(
    path, sample_rows: int = 0, name: Optional[str] = None
) -> Scenario:
    """Import an on-disk SQLite database, opened read-only."""
    uri = f"file:{Path(path).as_posix()}?mode=ro"
    conn = sqlite3.connect(uri, uri=True)
    try:
        return _import_connection(
            conn, source=name or str(path), sample_rows=sample_rows
        )
    finally:
        conn.close()


def _list_tables(conn: sqlite3.Connection) -> List[str]:
    rows = conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
    ).fetchall()
    names = []
    for (table_name,) in rows:
        if table_name.startswith("sqlite_"):
            continue
        names.append(table_name)
    return names


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _declared_type(decl: str) -> str:
    """SQLite's type-affinity rules, reduced to this repo's domain."""
    decl = (decl or "").upper()
    if "INT" in decl:
        return TYPE_INT
    if any(token in decl for token in ("CHAR", "CLOB", "TEXT")):
        return TYPE_TEXT
    if "BLOB" in decl or decl == "":
        return TYPE_INT
    # REAL/FLOA/DOUB and NUMERIC-ish declarations: the column may hold
    # floats; keep it only if the actual values turn out integral/textual.
    return TYPE_INT


def _import_connection(
    conn: sqlite3.Connection, source: str, sample_rows: int
) -> Scenario:
    notes: List[str] = []
    schema_map: Dict[str, Tuple[str, ...]] = {}
    tables: Dict[str, List[Tuple[object, ...]]] = {}
    types: Dict[str, Dict[str, str]] = {}
    kept_columns: Dict[str, List[int]] = {}

    for table_name in _list_tables(conn):
        info = conn.execute(f"PRAGMA table_info({_quote(table_name)})").fetchall()
        if not info:
            notes.append(f"dropped table {table_name}: no column metadata")
            continue
        columns = [str(row[1]) for row in info]
        declared = {str(row[1]): _declared_type(str(row[2])) for row in info}

        limit = f" LIMIT {int(sample_rows)}" if sample_rows > 0 else ""
        column_list = ", ".join(_quote(c) for c in columns)
        try:
            raw = conn.execute(
                f"SELECT {column_list} FROM {_quote(table_name)}"
                f" ORDER BY rowid{limit}"
            ).fetchall()
        except sqlite3.OperationalError:
            # WITHOUT ROWID tables have no rowid; fall back to natural order.
            raw = conn.execute(
                f"SELECT {column_list} FROM {_quote(table_name)}{limit}"
            ).fetchall()
        total = conn.execute(
            f"SELECT COUNT(*) FROM {_quote(table_name)}"
        ).fetchone()[0]
        if sample_rows > 0 and total > sample_rows:
            notes.append(
                f"sampled table {table_name}: kept {sample_rows} of {total} rows"
            )

        keep, column_types, drop_notes = _classify_columns(
            table_name, columns, declared, raw
        )
        notes.extend(drop_notes)
        if not keep:
            notes.append(f"dropped table {table_name}: no importable columns")
            continue

        schema_map[table_name] = tuple(columns[i] for i in keep)
        kept_columns[table_name] = keep
        types[table_name] = column_types
        tables[table_name] = [
            tuple(_convert(row[i], column_types[columns[i]]) for i in keep)
            for row in raw
        ]

    if not schema_map:
        raise ValueError(f"source {source!r} contains no importable tables")

    fks = _read_foreign_keys(conn, schema_map, notes)
    schema = Schema(schema_map)
    database = Database(schema, tables)
    return Scenario(
        schema=schema,
        database=database,
        fks=tuple(fks),
        types=types,
        source=source,
        notes=tuple(notes),
    )


def _classify_columns(
    table_name: str,
    columns: Sequence[str],
    declared: Mapping[str, str],
    raw: Sequence[Sequence[object]],
) -> Tuple[List[int], Dict[str, str], List[str]]:
    """Decide, per column, whether to keep it and as which type."""
    keep: List[int] = []
    column_types: Dict[str, str] = {}
    notes: List[str] = []
    for i, column in enumerate(columns):
        saw_int = saw_text = False
        unsupported = None
        for row in raw:
            value = row[i]
            if value is None:
                continue
            if isinstance(value, bool) or isinstance(value, int):
                saw_int = True
            elif isinstance(value, float):
                if value.is_integer():
                    saw_int = True
                else:
                    unsupported = "float"
                    break
            elif isinstance(value, str):
                saw_text = True
            else:
                unsupported = type(value).__name__
                break
        if unsupported is not None:
            notes.append(
                f"dropped column {table_name}.{column}: "
                f"unsupported value type {unsupported}"
            )
            continue
        if saw_int and saw_text:
            notes.append(
                f"coerced column {table_name}.{column} to text: mixed int/text"
            )
            kind = TYPE_TEXT
        elif saw_text:
            kind = TYPE_TEXT
        elif saw_int:
            kind = TYPE_INT
        else:
            # Empty / all-NULL column: trust the declared affinity.
            kind = declared.get(column, TYPE_INT)
        keep.append(i)
        column_types[column] = kind
    return keep, column_types, notes


def _convert(value: object, kind: str):
    if value is None:
        return NULL
    if kind == TYPE_TEXT:
        if isinstance(value, bool):
            return str(int(value))
        if isinstance(value, float):
            return str(int(value))
        return value if isinstance(value, str) else str(value)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        return int(value)
    return value


def _read_foreign_keys(
    conn: sqlite3.Connection,
    schema_map: Mapping[str, Tuple[str, ...]],
    notes: List[str],
) -> List[ForeignKey]:
    fks: List[ForeignKey] = []
    for table_name, kept in schema_map.items():
        kept_set = set(kept)
        # foreign_key_list: (id, seq, table, from, to, on_update, on_delete, match)
        rows = conn.execute(
            f"PRAGMA foreign_key_list({_quote(table_name)})"
        ).fetchall()
        groups: Dict[int, List[Tuple[str, Optional[str], str]]] = {}
        for row in rows:
            fk_id, _seq, ref_table = row[0], row[1], str(row[2])
            groups.setdefault(fk_id, []).append((str(row[3]), row[4], ref_table))
        for fk_id, pairs in sorted(groups.items()):
            ref_table = pairs[0][2]
            if ref_table not in schema_map:
                notes.append(
                    f"dropped foreign key on {table_name}: "
                    f"target table {ref_table} not imported"
                )
                continue
            columns = tuple(frm for frm, _to, _ref in pairs)
            targets = [to for _frm, to, _ref in pairs]
            if any(t is None for t in targets):
                # Implicit reference to the target's primary key.
                resolved = _primary_key(conn, ref_table)
                if len(resolved) != len(columns):
                    notes.append(
                        f"dropped foreign key on {table_name}: cannot resolve "
                        f"implicit primary key of {ref_table}"
                    )
                    continue
                targets = list(resolved)
            ref_columns = tuple(str(t) for t in targets)
            if not kept_set.issuperset(columns) or not set(
                schema_map[ref_table]
            ).issuperset(ref_columns):
                notes.append(
                    f"dropped foreign key {table_name}{columns} -> "
                    f"{ref_table}{ref_columns}: column not imported"
                )
                continue
            fks.append(ForeignKey(table_name, columns, ref_table, ref_columns))
    return fks


def _primary_key(conn: sqlite3.Connection, table_name: str) -> Tuple[str, ...]:
    info = conn.execute(f"PRAGMA table_info({_quote(table_name)})").fetchall()
    pk = [(row[5], str(row[1])) for row in info if row[5]]
    return tuple(name for _pos, name in sorted(pk))


# -- CSV directories -----------------------------------------------------------


def import_csv_dir(
    path, sample_rows: int = 0, name: Optional[str] = None
) -> Scenario:
    """Import a directory of ``table.csv`` files (+ optional ``fks.json``).

    CSV cells are typed per column: if every non-empty cell parses as an int
    the column is int-typed, otherwise text.  Empty cells are NULL.
    """
    p = Path(path)
    notes: List[str] = []
    schema_map: Dict[str, Tuple[str, ...]] = {}
    tables: Dict[str, List[Tuple[object, ...]]] = {}
    types: Dict[str, Dict[str, str]] = {}

    for csv_path in sorted(p.glob("*.csv")):
        table_name = csv_path.stem
        with open(csv_path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                notes.append(f"dropped table {table_name}: empty file")
                continue
            rows = [tuple(row) for row in reader]
        if sample_rows > 0 and len(rows) > sample_rows:
            notes.append(
                f"sampled table {table_name}: kept {sample_rows} of {len(rows)} rows"
            )
            rows = rows[:sample_rows]
        columns = tuple(h.strip() for h in header)
        column_types: Dict[str, str] = {}
        for i, column in enumerate(columns):
            kind = TYPE_INT
            for row in rows:
                cell = row[i] if i < len(row) else ""
                if cell == "":
                    continue
                if not _is_int_literal(cell):
                    kind = TYPE_TEXT
                    break
            column_types[column] = kind
        converted = [
            tuple(
                _convert_cell(row[i] if i < len(row) else "", column_types[c])
                for i, c in enumerate(columns)
            )
            for row in rows
        ]
        schema_map[table_name] = columns
        tables[table_name] = converted
        types[table_name] = column_types

    if not schema_map:
        raise ValueError(f"directory {p} contains no CSV tables")

    fks: List[ForeignKey] = []
    sidecar = p / "fks.json"
    if sidecar.exists():
        for payload in json.loads(sidecar.read_text()):
            fk = ForeignKey.from_json(payload)
            if fk.table in schema_map and fk.ref_table in schema_map:
                fks.append(fk)
            else:
                notes.append(f"dropped foreign key {payload}: table not imported")

    schema = Schema(schema_map)
    return Scenario(
        schema=schema,
        database=Database(schema, tables),
        fks=tuple(fks),
        types=types,
        source=name or str(p),
        notes=tuple(notes),
    )


def _is_int_literal(cell: str) -> bool:
    text = cell.strip()
    if text.startswith(("-", "+")):
        text = text[1:]
    return text.isdigit()


def _convert_cell(cell: str, kind: str):
    if cell == "":
        return NULL
    return int(cell) if kind == TYPE_INT else cell


# -- export (the other half of the metamorphic loop) ---------------------------


def export_sqlite(scenario: Scenario, path) -> None:
    """Write a scenario as a SQLite database with typed DDL + FK clauses.

    ``import_scenario(path)`` on the result reproduces the scenario's table
    fingerprints exactly (the metamorphic round-trip property).
    """
    out = Path(path)
    if out.exists():
        out.unlink()
    conn = sqlite3.connect(str(out))
    try:
        _export_into(scenario, conn)
        conn.commit()
    finally:
        conn.close()


def export_sql_script(scenario: Scenario, path) -> None:
    """Write a scenario as a text SQL script (the committed-fixture shape)."""
    conn = sqlite3.connect(":memory:")
    try:
        _export_into(scenario, conn)
        with open(path, "w") as handle:
            for line in conn.iterdump():
                handle.write(line + "\n")
    finally:
        conn.close()


def _export_into(scenario: Scenario, conn: sqlite3.Connection) -> None:
    fks_by_table: Dict[str, List[ForeignKey]] = {}
    for fk in scenario.fks:
        fks_by_table.setdefault(fk.table, []).append(fk)
    ordered = _fk_topological_order(scenario)
    for table_name in ordered:
        attrs = scenario.schema.attributes(table_name)
        decls = [
            f"{_quote(a)} "
            + ("INTEGER" if scenario.column_type(table_name, a) == TYPE_INT else "TEXT")
            for a in attrs
        ]
        for fk in fks_by_table.get(table_name, ()):
            decls.append(
                f"FOREIGN KEY ({', '.join(_quote(c) for c in fk.columns)}) "
                f"REFERENCES {_quote(fk.ref_table)} "
                f"({', '.join(_quote(c) for c in fk.ref_columns)})"
            )
        conn.execute(
            f"CREATE TABLE {_quote(table_name)} ({', '.join(decls)})"
        )
        placeholders = ", ".join("?" for _ in attrs)
        table = scenario.database.table(table_name)
        conn.executemany(
            f"INSERT INTO {_quote(table_name)} VALUES ({placeholders})",
            (
                tuple(None if v is NULL else v for v in record)
                for record in table.bag
            ),
        )


def _fk_topological_order(scenario: Scenario) -> List[str]:
    """Parents before children so FK-checked loads would succeed; cycles are
    broken arbitrarily (SQLite only enforces FKs when asked to)."""
    names = list(scenario.schema.table_names)
    deps: Dict[str, set] = {n: set() for n in names}
    for fk in scenario.fks:
        if fk.ref_table != fk.table:
            deps[fk.table].add(fk.ref_table)
    ordered: List[str] = []
    placed: set = set()
    while len(ordered) < len(names):
        progress = False
        for n in names:
            if n in placed:
                continue
            if deps[n] <= placed:
                ordered.append(n)
                placed.add(n)
                progress = True
        if not progress:  # FK cycle: emit the rest in declaration order
            for n in names:
                if n not in placed:
                    ordered.append(n)
                    placed.add(n)
    return ordered
