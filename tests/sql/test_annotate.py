"""The annotation pass: surface SQL → the fully-annotated form of Section 2."""

import pytest

from repro.core.errors import (
    AmbiguousReferenceError,
    DuplicateAliasError,
    UnboundReferenceError,
)
from repro.core.schema import Schema
from repro.core.values import NULL, FullName
from repro.sql.annotate import annotate
from repro.sql.ast import BareColumn, InQuery, Select
from repro.sql.printer import print_query


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "T": ("A", "B")})


def test_paper_running_example(schema):
    """Section 2's example: the fully annotated version of
    SELECT A, B AS C FROM R, (SELECT B FROM T) AS U WHERE A = B."""
    q = annotate(
        "SELECT A, B AS C FROM R, (SELECT B FROM T) AS U WHERE A = B", schema
    )
    assert (
        print_query(q)
        == "SELECT R.A AS A, U.B AS C FROM R AS R, "
        "(SELECT T.B AS B FROM T AS T) AS U WHERE R.A = U.B"
    )


def test_base_table_gets_self_alias(schema):
    q = annotate("SELECT A FROM R", schema)
    assert q.from_items[0].alias == "R"
    assert q.items[0].term == FullName("R", "A")


def test_explicit_alias_respected(schema):
    q = annotate("SELECT X.A FROM R AS X", schema)
    assert q.from_items[0].alias == "X"


def test_bare_column_resolution_prefers_local_scope(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT B FROM T)", schema
    )
    sub = q.where.query
    assert sub.items[0].term == FullName("T", "B")


def test_correlation_resolves_outward(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS "
        "(SELECT U.B FROM (SELECT T.B FROM T) AS U WHERE A = B)",
        schema,
    )
    sub = q.where.query
    # A is not bound by the local scope (U only has B), so it resolves to the
    # outer R; B comes from the local U.
    assert sub.where.args == (FullName("R", "A"), FullName("U", "B"))


def test_inner_scope_shadows_outer(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT A FROM T)", schema
    )
    sub = q.where.query
    assert sub.items[0].term == FullName("T", "A")


def test_ambiguous_bare_column(schema):
    with pytest.raises(AmbiguousReferenceError):
        annotate("SELECT A FROM R, T", schema)


def test_unbound_bare_column(schema):
    with pytest.raises(UnboundReferenceError):
        annotate("SELECT Z FROM R", schema)


def test_duplicate_alias_rejected(schema):
    with pytest.raises(DuplicateAliasError):
        annotate("SELECT X.A FROM R AS X, T AS X", schema)


def test_missing_select_alias_defaults_to_attribute(schema):
    q = annotate("SELECT R.A FROM R", schema)
    assert q.items[0].alias == "A"


def test_missing_alias_for_constant_synthesized(schema):
    q = annotate("SELECT 1, NULL FROM R", schema)
    assert q.items[0].alias == "COL1"
    assert q.items[1].alias == "COL2"
    assert q.items[1].term is NULL


def test_star_left_untouched(schema):
    q = annotate("SELECT * FROM R", schema)
    assert q.is_star


def test_from_subqueries_do_not_see_siblings(schema):
    """FROM items are evaluated under the outer environment: a sibling's
    columns are not visible (only WHERE subqueries are correlated locally).
    B is bound only by the sibling T AS X, so it must not resolve."""
    with pytest.raises(UnboundReferenceError):
        annotate("SELECT X.A FROM T AS X, (SELECT B FROM R AS Y) AS U", schema)


def test_from_subqueries_see_outer_scopes(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT U.C FROM (SELECT R.A AS C FROM T) AS U)",
        schema,
    )
    sub = q.where.query
    inner = sub.from_items[0].table
    assert inner.items[0].term == FullName("R", "A")


def test_in_subquery_annotated(schema):
    q = annotate("SELECT R.A FROM R WHERE A IN (SELECT B FROM T)", schema)
    assert isinstance(q.where, InQuery)
    assert q.where.terms == (FullName("R", "A"),)
    assert q.where.query.items[0].term == FullName("T", "B")


def test_no_bare_columns_survive(schema):
    q = annotate(
        "SELECT A, 3 FROM R WHERE A = 1 AND EXISTS (SELECT B FROM T WHERE A < B)",
        schema,
    )

    def walk_terms(query):
        from repro.sql.ast import iter_terms

        if isinstance(query, Select):
            if not query.is_star:
                for item in query.items:
                    yield item.term
            yield from iter_terms(query.where)

    assert not any(isinstance(t, BareColumn) for t in walk_terms(q))


def test_annotate_accepts_ast_input(schema):
    from repro.sql.parser import parse_query

    surface = parse_query("SELECT A FROM R")
    q = annotate(surface, schema)
    assert q.items[0].term == FullName("R", "A")


def test_annotation_is_idempotent(schema):
    q1 = annotate("SELECT A, B AS C FROM R, (SELECT B FROM T) AS U WHERE A = B", schema)
    q2 = annotate(q1, schema)
    assert q1 == q2
