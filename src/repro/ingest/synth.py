"""FK-respecting skewed data synthesis.

:func:`synthesize` fills a schema-with-FK-structure at an arbitrary scale
while keeping every foreign key valid: child columns only ever hold values
copied from an actual parent row (or NULL).  Parent rows are drawn with a
Zipfian distribution, so a few "hot" parents accumulate most children — the
skew shape real FK-rich databases exhibit and uniform fillers miss.

Determinism contract (pinned by ``tests/ingest/test_synth.py``): the RNG for
each table is ``random.Random(f"{seed}:{table}")``.  String seeds hash via
SHA-512 inside CPython's ``random`` module, so the same seed reproduces the
same tables in any process on any platform, and adding a table to the
scenario never perturbs the other tables' contents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schema import Database, Schema
from ..core.values import NULL
from .scenario import TYPE_INT, TYPE_TEXT, ForeignKey, Scenario

__all__ = ["SynthConfig", "synthesize", "synthesize_scenario"]

_WORDS = (
    "alder", "birch", "cedar", "delta", "ember", "fjord", "gorse",
    "heath", "inlet", "juniper", "krill", "larch", "moss", "nettle",
    "osier", "pine", "quartz", "reed", "sedge", "tarn",
)


@dataclass(frozen=True)
class SynthConfig:
    """Knobs for :func:`synthesize`.

    ``rows`` is the default per-table row count; ``table_rows`` overrides it
    per table (parents are often much smaller than children).  ``skew`` is
    the Zipf exponent for parent-row reuse: 0 = uniform, 1 ≈ classic Zipf,
    larger = hotter hot keys.  ``null_rate`` applies to every nullable
    position: non-FK columns always, FK columns as "orphan-free missing
    parent" markers.
    """

    rows: int = 1000
    table_rows: Mapping[str, int] = None  # type: ignore[assignment]
    skew: float = 1.0
    null_rate: float = 0.1
    #: Distinct non-key values per column before reuse kicks in.
    domain: int = 64

    def __post_init__(self) -> None:
        if self.table_rows is None:
            object.__setattr__(self, "table_rows", {})
        if self.rows < 0:
            raise ValueError("rows must be non-negative")
        if not 0.0 <= self.null_rate < 1.0:
            raise ValueError("null_rate must be in [0, 1)")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")

    def rows_for(self, table: str) -> int:
        return int(self.table_rows.get(table, self.rows))


def _zipf_weights(n: int, skew: float) -> List[float]:
    if skew <= 0:
        return [1.0] * n
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def _topological(schema: Schema, fks: Sequence[ForeignKey]) -> Tuple[List[str], List[ForeignKey], List[str]]:
    """Tables in parents-first order; FK edges that close a cycle are set
    aside (their columns become all-NULL, with a note)."""
    names = list(schema.table_names)
    active = list(fks)
    dropped: List[str] = []
    while True:
        deps: Dict[str, set] = {n: set() for n in names}
        for fk in active:
            if fk.table != fk.ref_table:
                deps[fk.table].add(fk.ref_table)
        ordered: List[str] = []
        placed: set = set()
        progress = True
        while progress:
            progress = False
            for n in names:
                if n not in placed and deps[n] <= placed:
                    ordered.append(n)
                    placed.add(n)
                    progress = True
        if len(ordered) == len(names):
            return ordered, active, dropped
        # Break the cycle: drop the first FK edge among the unplaced tables.
        stuck = [n for n in names if n not in placed]
        for i, fk in enumerate(active):
            if fk.table in stuck and fk.ref_table in stuck:
                dropped.append(
                    f"fk {fk.table}{fk.columns} -> {fk.ref_table}: cycle, "
                    "filled with NULLs"
                )
                del active[i]
                break
        else:  # pragma: no cover - self-loops already filtered
            return ordered + stuck, active, dropped


def synthesize(
    schema: Schema,
    fks: Sequence[ForeignKey] = (),
    config: Optional[SynthConfig] = None,
    seed: int = 0,
    types: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> Scenario:
    """Build a :class:`Scenario` with valid FKs at the configured scale."""
    config = config or SynthConfig()
    types = types or {}
    order, active_fks, cycle_notes = _topological(schema, fks)

    # Self-referencing FKs cannot be satisfied while a table is being built;
    # fill them with NULLs, like the edges dropped to break cycles.
    usable: List[ForeignKey] = []
    notes = list(cycle_notes)
    null_fill = {
        (fk.table, column)
        for fk in fks
        if fk not in active_fks
        for column in fk.columns
    }
    for fk in active_fks:
        if fk.table == fk.ref_table:
            notes.append(
                f"fk {fk.table}{fk.columns} -> itself: filled with NULLs"
            )
            null_fill.update((fk.table, column) for column in fk.columns)
        else:
            usable.append(fk)

    fks_by_table: Dict[str, List[ForeignKey]] = {}
    for fk in usable:
        fks_by_table.setdefault(fk.table, []).append(fk)

    # Referenced columns get unique serial values, so Zipf reuse in children
    # is the only source of duplication and joins stay key–foreign-key shaped.
    key_columns = {
        (fk.ref_table, ref_col) for fk in usable for ref_col in fk.ref_columns
    }

    built: Dict[str, List[Tuple[object, ...]]] = {}
    for table_name in order:
        rng = random.Random(f"{seed}:{table_name}")
        attrs = schema.attributes(table_name)
        n_rows = config.rows_for(table_name)
        table_fks = fks_by_table.get(table_name, ())
        fk_cols: Dict[str, Tuple[ForeignKey, int]] = {}
        for fk in table_fks:
            for i, col in enumerate(fk.columns):
                fk_cols[col] = (fk, i)

        # One Zipf draw per (row, FK): pick a parent row, copy its targets —
        # composite FKs stay internally consistent because all their columns
        # come from the same parent row.
        parent_choices: Dict[int, List[Optional[int]]] = {}
        for fk_index, fk in enumerate(table_fks):
            parent_rows = built.get(fk.ref_table, [])
            if not parent_rows:
                parent_choices[fk_index] = [None] * n_rows
                continue
            # Hot ranks permuted so "hot" parents differ per child table.
            perm = list(range(len(parent_rows)))
            rng.shuffle(perm)
            weights = _zipf_weights(len(parent_rows), config.skew)
            picks = rng.choices(perm, weights=weights, k=n_rows) if n_rows else []
            parent_choices[fk_index] = [
                None if rng.random() < config.null_rate else pick
                for pick in picks
            ]

        fk_to_index = {id(fk): i for i, fk in enumerate(table_fks)}
        rows: List[Tuple[object, ...]] = []
        for row_index in range(n_rows):
            record: List[object] = []
            for attr in attrs:
                if attr in fk_cols:
                    fk, pos = fk_cols[attr]
                    pick = parent_choices[fk_to_index[id(fk)]][row_index]
                    if pick is None:
                        record.append(NULL)
                    else:
                        parent = built[fk.ref_table][pick]
                        ref_attrs = schema.attributes(fk.ref_table)
                        record.append(parent[ref_attrs.index(fk.ref_columns[pos])])
                elif (table_name, attr) in null_fill:
                    record.append(NULL)
                else:
                    record.append(
                        _plain_value(
                            rng, config, types, key_columns,
                            table_name, attr, row_index,
                        )
                    )
            rows.append(tuple(record))
        built[table_name] = rows

    database = Database(schema, built)
    return Scenario(
        schema=schema,
        database=database,
        fks=tuple(fks),
        types=dict(types) if types else {},
        source=f"synthesized(seed={seed})",
        notes=tuple(notes),
    )


def _plain_value(
    rng: random.Random,
    config: SynthConfig,
    types: Mapping[str, Mapping[str, str]],
    key_columns,
    table: str,
    attr: str,
    row_index: int,
):
    kind = types.get(table, {}).get(attr, TYPE_INT)
    if (table, attr) in key_columns:
        # FK targets stay unique and non-NULL: serial values.
        return row_index if kind == TYPE_INT else f"{attr.lower()}{row_index}"
    if rng.random() < config.null_rate:
        return NULL
    if kind == TYPE_TEXT:
        return rng.choice(_WORDS) + str(rng.randrange(config.domain))
    return rng.randrange(config.domain)


def synthesize_scenario(
    scenario: Scenario,
    config: Optional[SynthConfig] = None,
    seed: int = 0,
) -> Scenario:
    """Re-fill an imported scenario's schema at a new scale.

    Keeps the schema, FK edges and column types; replaces the contents.
    """
    out = synthesize(
        scenario.schema,
        fks=scenario.fks,
        config=config,
        seed=seed,
        types=scenario.types,
    )
    return Scenario(
        schema=out.schema,
        database=out.database,
        fks=out.fks,
        types=out.types,
        source=f"{scenario.source} (resynthesized seed={seed})",
        notes=out.notes,
    )
