"""The FK-join-biased scenario query generator."""

import random

from repro.ingest import import_scenario
from repro.ingest.demo import library_scenario
from repro.ingest.generator import (
    DEFAULT_SCENARIO_CONFIG,
    SCALE_SCENARIO_CONFIG,
    ScenarioGenerator,
    config_for_scenario,
    scenario_generator,
)
from repro.semantics import STAR_COMPOSITIONAL
from repro.sql.ast import Select, SetOp
from repro.sql.printer import print_query
from repro.sql.typecheck import check_query
from repro.validation.compare import capture


def small_scenario():
    return library_scenario(80, seed=4)


def test_same_seed_same_query():
    scenario = small_scenario()
    a = scenario_generator(scenario, seed=5).generate()
    b = scenario_generator(scenario, seed=5).generate()
    assert print_query(a) == print_query(b)


def test_generate_seed_argument_reseeds():
    scenario = small_scenario()
    generator = ScenarioGenerator(scenario, rng=random.Random(0))
    first = print_query(generator.generate(seed=17))
    generator.generate(seed=99)
    assert print_query(generator.generate(seed=17)) == first


def test_setop_operands_share_arity():
    scenario = small_scenario()
    generator = scenario_generator(scenario, seed=0)
    seen_setop = False
    for seed in range(300):
        query = generator.generate(seed=seed)
        if isinstance(query, SetOp):
            seen_setop = True
            assert isinstance(query.left, Select)
            assert not query.left.is_star and not query.right.is_star
            assert len(query.left.items) == len(query.right.items)
    assert seen_setop


def test_generated_queries_typecheck_and_evaluate():
    """Every generated query must be a valid member of the fragment: it
    typechecks and executes under the repository's engine."""
    from repro.engine import DIALECT_POSTGRES, Engine

    scenario = small_scenario()
    engine = Engine(scenario.schema, DIALECT_POSTGRES, plan_cache_size=0)
    generator = scenario_generator(scenario, seed=0)
    for seed in range(150):
        query = generator.generate(seed=seed)

        def run():
            check_query(query, scenario.schema, star_style=STAR_COMPOSITIONAL)
            return engine.execute(query, scenario.database)

        outcome = capture(run)
        # Compile-time dialect errors (e.g. ordered int-vs-text) are
        # legitimate trial outcomes; crashes are not.
        assert outcome.is_error or outcome.table is not None


def test_joins_follow_fk_edges():
    """Multi-table FROM clauses only ever join along the scenario's FK
    graph, so intermediate sizes stay near the data size."""
    scenario = small_scenario()
    adjacent = set()
    for fk in scenario.fks:
        adjacent.add((fk.table, fk.ref_table))
        adjacent.add((fk.ref_table, fk.table))
    generator = scenario_generator(scenario, seed=0)
    multi = 0
    for seed in range(200):
        query = generator.generate(seed=seed)
        selects = (
            [query.left, query.right] if isinstance(query, SetOp) else [query]
        )
        for select in selects:
            tables = [item.table for item in select.from_items]
            if len(tables) > 1:
                multi += 1
                for a, b in zip(tables, tables[1:]):
                    assert (a, b) in adjacent
    assert multi > 0


def test_config_for_scenario_scales():
    assert config_for_scenario(library_scenario(100)) is (
        DEFAULT_SCENARIO_CONFIG
    )
    assert config_for_scenario(library_scenario(20000)) is (
        SCALE_SCENARIO_CONFIG
    )


def test_generator_over_imported_fixture(tmp_path):
    from pathlib import Path

    fixture = (
        Path(__file__).resolve().parent.parent / "fixtures" / "library.sql"
    )
    scenario = import_scenario(str(fixture))
    query = scenario_generator(scenario, seed=1).generate()
    assert print_query(query)
