"""CLI coverage for the distributed commands: ``coordinate``, ``work`` and
``report --merge`` — help text, the file-based end-to-end flow, exit codes."""

import json

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.cli import main

SERIAL_SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)


def coordinate_argv(out_dir, trials="30"):
    return [
        "coordinate", "--trials", trials, "--rows", "3",
        "--workers", "3", "--out", out_dir,
    ]


def test_coordinate_help_names_both_modes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["coordinate", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--workers-file", "--serve", "--lease-timeout-s", "--merged"):
        assert flag in out


def test_work_help_names_both_modes(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["work", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for flag in ("--coordinator", "--seed-range", "--checkpoint", "--resume"):
        assert flag in out


def test_file_based_flow_end_to_end(tmp_path, capsys):
    """coordinate --no-wait → run the printed leases via `work` → coordinate
    again merges, bit-identical to the serial run."""
    out = str(tmp_path / "dist")
    assert main(coordinate_argv(out) + ["--no-wait"]) == 0
    stdout = capsys.readouterr().out
    assert "3 lease(s) pending" in stdout

    # Run each lease exactly as plan.sh would, but in-process.
    with open(tmp_path / "dist" / "leases.jsonl") as handle:
        events = [json.loads(line) for line in handle][1:]
    issues = [event for event in events if event["event"] == "issue"]
    assert len(issues) == 3
    for issue in issues:
        code = main(
            [
                "work", "--seed-range", f"{issue['lo']}:{issue['hi']}",
                "--checkpoint", issue["checkpoint"], "--rows", "3", "--resume",
            ]
        )
        assert code == 0

    merged_path = str(tmp_path / "merged.jsonl")
    assert main(coordinate_argv(out) + ["--merged", merged_path]) == 0
    stdout = capsys.readouterr().out

    serial = run_campaign(SERIAL_SPEC, trials=30, base_seed=0, jobs=1)
    assert serial.outcome_digest[:12] in stdout
    assert main(["report", merged_path]) == 0
    assert serial.outcome_digest in capsys.readouterr().out


def test_report_merge_combines_worker_files(tmp_path, capsys):
    serial = run_campaign(SERIAL_SPEC, trials=20, base_seed=0, jobs=1)
    paths = []
    for lo, hi in [(0, 10), (10, 20)]:
        path = str(tmp_path / f"{lo}.jsonl")
        run_campaign(
            SERIAL_SPEC, trials=hi - lo, base_seed=lo, jobs=1, checkpoint=path
        )
        paths.append(path)
    assert main(["report", "--merge"] + paths) == 0
    out = capsys.readouterr().out
    assert serial.outcome_digest in out
    assert "20 recorded, 0 pending" in out


def test_report_multiple_files_require_merge(tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    for path in (a, b):
        path.write_text("")
    with pytest.raises(SystemExit, match="--merge"):
        main(["report", str(a), str(b)])


def test_report_merge_conflict_is_a_clean_error(tmp_path):
    header = {
        "schema": "campaign-checkpoint/v1",
        "spec": SERIAL_SPEC.to_json(),
        "base_seed": 0,
        "trials": 2,
    }
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    a.write_text(json.dumps(header) + "\n" + '{"seed": 0, "code": 1}\n')
    b.write_text(json.dumps(header) + "\n" + '{"seed": 0, "code": 3}\n')
    with pytest.raises(SystemExit, match="seed 0"):
        main(["report", "--merge", str(a), str(b)])


def test_work_flag_validation(tmp_path):
    with pytest.raises(SystemExit, match="seed-range"):
        main(["work"])
    with pytest.raises(SystemExit, match="expected A:B"):
        main(["work", "--seed-range", "abc", "--checkpoint", "x.jsonl"])
    with pytest.raises(SystemExit, match="A < B"):
        main(["work", "--seed-range", "9:9", "--checkpoint", "x.jsonl"])
    with pytest.raises(SystemExit, match="checkpoint"):
        main(["work", "--seed-range", "0:5"])


def test_workers_file_names_the_leases(tmp_path, capsys):
    hosts = tmp_path / "hosts.json"
    hosts.write_text(json.dumps(["alpha", {"name": "beta"}]))
    out = str(tmp_path / "dist")
    argv = [
        "coordinate", "--trials", "10", "--rows", "3",
        "--workers-file", str(hosts), "--out", out, "--no-wait",
    ]
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    assert "alpha" in stdout and "beta" in stdout


def test_workers_file_with_no_workers_is_an_error(tmp_path):
    hosts = tmp_path / "hosts.json"
    hosts.write_text("[]")
    with pytest.raises(SystemExit, match="no workers"):
        main(
            [
                "coordinate", "--trials", "10", "--workers-file", str(hosts),
                "--out", str(tmp_path / "d"), "--no-wait",
            ]
        )
