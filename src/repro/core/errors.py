"""Exception hierarchy for the whole reproduction.

Errors are split along the paper's own fault lines:

* *compile-time* errors — queries that a conforming RDBMS rejects before
  execution (unknown tables, arity mismatches in set operations and IN,
  duplicate aliases in a FROM clause, references that cannot be resolved);
* *ambiguity* errors — the paper's "environment undefined on a repeated full
  name" situation (Example 2), which the standard/Oracle behaviour surfaces
  as an error while PostgreSQL's compositional semantics avoids;
* *parse* errors from the SQL front end;
* *algebra* errors for ill-defined relational algebra expressions (Section 5
  lists the well-definedness side conditions of each operator).

The validation harness (Section 4) treats "both implementations raise an
ambiguity error" as agreement, mirroring how the paper compared its
Oracle-adjusted semantics against Oracle's errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CompileError",
    "ParseError",
    "UnknownTableError",
    "DuplicateAliasError",
    "ArityMismatchError",
    "UnboundReferenceError",
    "AmbiguousReferenceError",
    "AlgebraError",
    "IllFormedExpressionError",
    "SchemaError",
    "NotDataManipulationError",
]


class ReproError(Exception):
    """Base class of every error raised by :mod:`repro`."""


class CompileError(ReproError):
    """A query is rejected before evaluation (it would not compile)."""


class ParseError(CompileError):
    """The SQL text is not a well-formed query of the basic fragment.

    Carries the 1-based line/column of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class UnknownTableError(CompileError):
    """A FROM clause references a base table that the schema does not declare."""


class DuplicateAliasError(CompileError):
    """Two items of the same FROM clause were given the same alias."""


class ArityMismatchError(CompileError):
    """Set operations or IN comparisons combine tables of different arity."""


class UnboundReferenceError(CompileError):
    """A full name resolves against no scope (the query would not compile)."""


class AmbiguousReferenceError(ReproError):
    """A reference to a repeated full name: the environment is undefined on it.

    This is the error of Example 2: ``SELECT * FROM (SELECT R.A, R.A FROM R)
    AS T`` forces a reference to the repeated full name ``T.A``.  It is *not*
    a :class:`CompileError` subclass semantically distinguishable from it in
    real systems, but we keep it separate because the validation harness
    matches it against the reference engine's own ambiguity error.
    """


class AlgebraError(ReproError):
    """Base class for relational-algebra errors (Section 5)."""


class IllFormedExpressionError(AlgebraError):
    """An RA expression violates a well-definedness side condition."""


class SchemaError(ReproError):
    """A schema or database instance is internally inconsistent."""


class NotDataManipulationError(ReproError):
    """A query fails Definition 1 and cannot be translated to RA."""
