"""Poison-lease quarantine: a range no worker survives must not wedge the
campaign — after ``max_lease_attempts`` failed issues it is quarantined,
faithfully reported, and the campaign finishes visibly incomplete."""

from repro.campaigns import CampaignSpec, Coordinator

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def abandon(coordinator, clock, worker="doomed"):
    """Acquire a lease, die holding it, and let it time out."""
    lease = coordinator.acquire(worker)
    if lease is not None:
        clock.advance(coordinator.lease_timeout_s + 1)
        coordinator.expire_stale()
    return lease


def test_poison_range_quarantines_after_max_attempts():
    clock = FakeClock()
    coordinator = Coordinator(
        SPEC, 10, lease_trials=10, lease_timeout_s=5,
        max_lease_attempts=3, clock=clock,
    )
    for attempt in range(1, 4):
        lease = abandon(coordinator, clock)
        assert lease is not None and lease.attempt == attempt
    # Attempts exhausted: the range is quarantined, never re-issued.
    assert coordinator.acquire("fresh") is None
    report = coordinator.quarantined()
    assert len(report) == 1
    assert (report[0]["lo"], report[0]["hi"]) == (0, 10)
    assert report[0]["attempts"] == 3
    assert report[0]["pending"] == 10
    status = coordinator.status()
    assert status["quarantined_ranges"] == 1
    assert status["quarantined_pending"] == 10
    # The campaign is done — visibly incomplete, not wedged.
    assert coordinator.done
    assert coordinator.result().completed == 0


def test_healthy_ranges_finish_around_a_poison_one():
    clock = FakeClock()
    coordinator = Coordinator(
        SPEC, 20, lease_trials=10, lease_timeout_s=5,
        max_lease_attempts=2, clock=clock,
    )
    backend = SPEC.build()
    poison = coordinator.acquire("doomed")  # [0, 10) dies every time
    healthy = coordinator.acquire("ok")
    coordinator.submit(
        healthy.lease_id,
        [backend.run_trial(seed) for seed in healthy.seeds()],
        worker="ok",
    )
    assert not coordinator.done
    clock.advance(6)
    coordinator.expire_stale()  # attempt 1 expires, re-queues
    abandon(coordinator, clock)  # attempt 2 dies -> quarantine
    assert coordinator.done
    report = coordinator.quarantined()
    assert [(q["lo"], q["hi"]) for q in report] == [(poison.lo, poison.hi)]
    assert coordinator.result().completed == 10


def test_late_submit_fills_a_quarantined_range():
    """A presumed-dead worker that resurfaces after quarantine still gets
    its records folded — dedup semantics make the hole heal."""
    clock = FakeClock()
    coordinator = Coordinator(
        SPEC, 10, lease_trials=10, lease_timeout_s=5,
        max_lease_attempts=1, clock=clock,
    )
    backend = SPEC.build()
    lease = abandon(coordinator, clock)  # immediately quarantined
    assert coordinator.quarantined()[0]["pending"] == 10
    outcome = coordinator.submit(
        lease.lease_id,
        [backend.run_trial(seed) for seed in lease.seeds()],
        worker="doomed",
    )
    assert outcome["accepted"] == 10
    # The quarantine record remains (it happened) but reports no holes.
    assert coordinator.quarantined()[0]["pending"] == 0
    assert coordinator.status()["quarantined_pending"] == 0
    assert coordinator.result().completed == 10


def test_quarantine_is_journaled(tmp_path):
    from repro.campaigns import load_journal

    clock = FakeClock()
    journal = str(tmp_path / "leases.jsonl")
    coordinator = Coordinator(
        SPEC, 5, lease_trials=5, lease_timeout_s=5,
        max_lease_attempts=1, clock=clock, journal_path=journal,
    )
    abandon(coordinator, clock)
    coordinator.close()
    _header, events = load_journal(journal)
    kinds = [event["event"] for event in events]
    assert kinds == ["issue", "quarantine"]
    assert events[1]["lo"] == 0 and events[1]["hi"] == 5
    assert events[1]["attempts"] == 1
