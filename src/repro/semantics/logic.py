"""Logic strategies: SQL's 3VL and the two two-valued alternatives of §6.

The evaluator of Figures 4–7 consults a :class:`Logic` for exactly the two
decision points where the third truth value can originate:

* applying a predicate ``P(t1, …, tk)`` when some argument is NULL;
* comparing two terms for equality (the building block of ``IN``).

Three strategies implement the paper's semantics:

* :class:`ThreeValued` — Figure 6: a NULL argument makes the predicate
  (including ``=``) evaluate to unknown;
* :class:`TwoValuedConflating` — Section 6's ⟦·⟧2v: f and u are conflated, so
  a NULL argument makes every predicate false;
* :class:`TwoValuedSyntactic` — the alternative of Section 6 where ``=`` is
  interpreted as *syntactic* equality (Definition 2: ``NULL = NULL`` is
  true), and every other predicate conflates as above.

Theorem 2 states that basic SQL is equally expressive under the three-valued
semantics and under either two-valued one.
"""

from __future__ import annotations

from ..core.truth import FALSE, TRUE, UNKNOWN, Truth
from ..core.values import NULL, Value
from .predicates import PredicateRegistry

__all__ = [
    "Logic",
    "ThreeValued",
    "TwoValuedConflating",
    "TwoValuedSyntactic",
    "THREE_VALUED",
    "TWO_VALUED_CONFLATING",
    "TWO_VALUED_SYNTACTIC",
    "get_logic",
]


class Logic:
    """Strategy interface for the null-sensitive atoms of the semantics."""

    name: str = "abstract"

    def predicate(
        self, registry: PredicateRegistry, name: str, values: tuple[Value, ...]
    ) -> Truth:
        """Truth value of ``P(values)`` under this logic."""
        raise NotImplementedError

    def equal(self, a: Value, b: Value) -> Truth:
        """Truth value of ``a = b`` under this logic."""
        return self.predicate_equality(a, b)

    def predicate_equality(self, a: Value, b: Value) -> Truth:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<logic {self.name}>"


class ThreeValued(Logic):
    """SQL's 3VL (Figure 6): NULL arguments yield unknown."""

    name = "3vl"

    def predicate(self, registry, name, values):
        if any(v is NULL for v in values):
            return UNKNOWN
        return Truth.from_bool(registry.holds(name, values))

    def predicate_equality(self, a, b):
        if a is NULL or b is NULL:
            return UNKNOWN
        return Truth.from_bool(a == b and isinstance(a, str) == isinstance(b, str))


class TwoValuedConflating(Logic):
    """⟦·⟧2v with f and u conflated: NULL arguments yield false."""

    name = "2vl-conflating"

    def predicate(self, registry, name, values):
        if any(v is NULL for v in values):
            return FALSE
        return Truth.from_bool(registry.holds(name, values))

    def predicate_equality(self, a, b):
        if a is NULL or b is NULL:
            return FALSE
        return Truth.from_bool(a == b and isinstance(a, str) == isinstance(b, str))


class TwoValuedSyntactic(Logic):
    """⟦·⟧2v with ``=`` read as syntactic equality (Definition 2).

    ``NULL = NULL`` is true and ``NULL = c`` is false; every other predicate
    conflates f and u exactly like :class:`TwoValuedConflating`.
    """

    name = "2vl-syntactic"

    def predicate(self, registry, name, values):
        if name == "=" and len(values) == 2:
            return self.predicate_equality(*values)
        if any(v is NULL for v in values):
            return FALSE
        return Truth.from_bool(registry.holds(name, values))

    def predicate_equality(self, a, b):
        if a is NULL or b is NULL:
            return Truth.from_bool(a is NULL and b is NULL)
        return Truth.from_bool(a == b and isinstance(a, str) == isinstance(b, str))


THREE_VALUED = ThreeValued()
TWO_VALUED_CONFLATING = TwoValuedConflating()
TWO_VALUED_SYNTACTIC = TwoValuedSyntactic()

_BY_NAME = {
    logic.name: logic
    for logic in (THREE_VALUED, TWO_VALUED_CONFLATING, TWO_VALUED_SYNTACTIC)
}


def get_logic(name: str) -> Logic:
    """Look up a logic by its name (``3vl``, ``2vl-conflating``, ``2vl-syntactic``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown logic {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
