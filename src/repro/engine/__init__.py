"""Independent reference engine (the PostgreSQL/Oracle stand-in of Section 4).

``Engine(schema, dialect)`` optimizes by default (pushdown, hash joins,
cached subquery probes); ``Engine(schema, dialect, optimize=False)`` is the
paper's naive product-then-filter evaluation, kept for ablations.
"""

from .binding import bind_plan, reset_plan
from .engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from .optimizer import optimize_plan
from .planner import CompiledQuery, Planner

__all__ = [
    "Engine",
    "Planner",
    "CompiledQuery",
    "optimize_plan",
    "bind_plan",
    "reset_plan",
    "DIALECT_POSTGRES",
    "DIALECT_ORACLE",
]
