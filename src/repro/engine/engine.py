"""The engine facade: compile + optimize + execute, with boundary conversions.

:class:`Engine` plays the role of the real RDBMS in the Section 4
experiment: it takes the same annotated query and database as the formal
semantics and produces a :class:`~repro.core.table.Table`, converting its
internal ``None`` nulls back to :data:`~repro.core.values.NULL` only at the
output boundary.

By default the compiled plan is rewritten by the optimizer
(:mod:`repro.engine.optimizer`): selection pushdown, hash equi-joins, and
cached probes for uncorrelated subqueries.  ``optimize=False`` retains the
paper's naive product-then-filter evaluation — the escape hatch used by the
ablation benchmarks to quantify the speedup, with the validation campaigns
guaranteeing both paths agree with the formal semantics.

On top of the plan *rewrites*, the plan is lowered into nested Python
closures by default (:mod:`repro.engine.compile`): predicate trees become
one generated function each, operators capture their children's compiled
iterators directly, and per-row virtual dispatch disappears from the hot
path.  ``compiled=False`` keeps the interpreted operator tree — the
ablation baseline the ``engine_compiled`` / ``engine_interpreted`` bench
stages compare (outcomes are bit-identical either way; the digest gate in
``scripts/bench.py`` enforces it).  Compilation hooks in at plan-cache
admission — compile once, execute many — so with ``plan_cache_size=0``
(the campaign shape: a fresh query every trial, each executed once) plans
stay interpreted: closure generation costs more than a single execution
over 6-row tables saves, measured at ~17% of campaign engine time.

Plan cache
----------

Compilation and optimization depend only on ``(query AST, schema, dialect,
optimize)``, never on the database instance, so the engine memoizes
optimized plans per query (dialect and optimize-flag are fixed per engine
instance, completing the key).  Plans are compiled *unbound* — their base
tables are :class:`~repro.engine.operators.TableScan` leaves — and
:func:`repro.engine.binding.bind_plan` installs the current database's rows
and clears per-execution memos before every run.  Prepared-statement-style
reuse is what the trial campaigns and the equivalence checker exercise: the
same query evaluated across many trial databases plans once.  ``cache_info()``
exposes hit/miss/eviction counters for the benchmarks; ``plan_cache_size=0``
disables caching entirely.

Build-side cache
----------------

On top of plan reuse, the engine shares *derived execution structures* —
hash-join build tables, semi-join probe sets, cached/memoized subquery
materializations — across executions through a content-keyed
:class:`~repro.engine.binding.BuildSideCache`: trial campaigns re-draw
table contents from small domains, so identical table contents recur and
the structures they determine need not be rebuilt.  Keys compare the bound
rows themselves (exact, no digests), values are copies made at bind time
(cached plans and cache entries never reference the
:class:`~repro.core.schema.Database`), and ``build_cache_size=0`` disables
sharing.  The cache only engages together with the plan cache — without
plan reuse there is no second execution to share with — and, per plan,
only from the second bind onward: keys are per plan node, so a plan
executed once can neither hit nor be hit, and single-use plans (one fresh
query per campaign trial) pay none of the bookkeeping.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from ..core.bag import Bag
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import NULL
from ..sql.ast import Query
from .binding import BuildSideCache, bind_plan, unbind_plan
from .compile import compile_plan
from .optimizer import optimize_plan
from .planner import CompiledQuery, DIALECT_ORACLE, DIALECT_POSTGRES, Planner

__all__ = ["Engine", "DIALECT_POSTGRES", "DIALECT_ORACLE"]

#: Default number of distinct query plans kept per engine (LRU-evicted).
DEFAULT_PLAN_CACHE_SIZE = 256

#: Default number of shared build-side structures kept per engine.
DEFAULT_BUILD_CACHE_SIZE = 128


class Engine:
    """An independent executor for basic SQL, in two dialect flavours."""

    def __init__(
        self,
        schema: Schema,
        dialect: str = DIALECT_POSTGRES,
        optimize: bool = True,
        compiled: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        build_cache_size: int = DEFAULT_BUILD_CACHE_SIZE,
        optimizer_options: Optional[Dict[str, bool]] = None,
    ):
        self.schema = schema
        self.dialect = dialect
        self.optimize = optimize
        self.compiled = compiled
        self.plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[Query, CompiledQuery]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._build_cache = (
            BuildSideCache(build_cache_size) if build_cache_size > 0 else None
        )
        #: Ablation knobs forwarded to :func:`optimize_plan` (benchmarks
        #: compare e.g. ``{"reorder_joins": False}`` against the default).
        self.optimizer_options = dict(optimizer_options or {})

    def execute(self, query: Query, db: Database) -> Table:
        """Compile (or reuse a cached plan for) ``query`` and run it on ``db``.

        Compile-time errors (unknown tables, arity mismatches, ambiguous
        references) are raised before any row is produced, matching the
        behaviour of the real systems the engine stands in for.
        """
        compiled = self._plan(query)
        cache = self._build_cache if self.plan_cache_size > 0 else None
        bind_plan(compiled.plan, db, cache=cache)
        try:
            rows = (compiled.run or compiled.plan.iter_rows)(())
            records = (
                tuple(NULL if v is None else v for v in row) for row in rows
            )
            # Bag() materializes fully, so unbinding afterwards is safe.
            return Table(compiled.labels, Bag(records))
        finally:
            if self.plan_cache_size > 0:
                unbind_plan(compiled.plan, cache=cache)

    # -- plan cache ---------------------------------------------------------

    def _plan(self, query: Query) -> CompiledQuery:
        if self.plan_cache_size <= 0:
            # Single-use plan: closure compilation would cost more than one
            # execution saves (measured on the campaign workload), so the
            # compiler only hooks in at plan-cache admission below.
            return self._compile(query, admit=False)
        cached = self._plan_cache.get(query)
        if cached is not None:
            self._cache_hits += 1
            self._plan_cache.move_to_end(query)
            return cached
        self._cache_misses += 1
        compiled = self._compile(query)
        self._plan_cache[query] = compiled
        if len(self._plan_cache) > self.plan_cache_size:
            self._plan_cache.popitem(last=False)
            self._cache_evictions += 1
        return compiled

    def _compile(self, query: Query, admit: bool = True) -> CompiledQuery:
        planner = Planner(self.schema, None, self.dialect)
        compiled = planner.compile(query)
        plan = compiled.plan
        if self.optimize:
            plan = optimize_plan(plan, **self.optimizer_options)
        run = compile_plan(plan) if (self.compiled and admit) else None
        return CompiledQuery(plan, compiled.labels, run)

    def cache_info(self) -> Dict[str, int]:
        """Plan-cache counters: hits, misses, evictions, current size."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "size": len(self._plan_cache),
            "maxsize": self.plan_cache_size,
        }

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    # -- build-side cache ----------------------------------------------------

    def build_cache_info(self) -> Dict[str, int]:
        """Build-side cache counters: hits, misses, evictions, current size."""
        if self._build_cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "size": 0, "maxsize": 0}
        return self._build_cache.info()

    def clear_build_cache(self) -> None:
        if self._build_cache is not None:
            self._build_cache.clear()
