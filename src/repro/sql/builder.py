"""A fluent builder for basic SQL ASTs.

Constructing :mod:`repro.sql.ast` nodes by hand is verbose; the builder
offers a compact programmatic surface for tools, tests and generated code::

    from repro.sql.builder import col, select, table

    q = (
        select(col("R.A").as_("X"), 42)
        .from_(table("R"), select(col("T.B")).from_(table("T")).as_("U"))
        .where(col("R.A").eq(col("U.B")) & col("R.A").is_not_null())
        .distinct()
        .build()
    )

``build()`` returns a plain (surface) AST; run it through
:func:`repro.sql.annotate.annotate_query` as usual.  Conditions compose
with ``&``, ``|`` and ``~``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.values import NULL, FullName, Name, Term
from .ast import (
    And,
    BareColumn,
    Condition,
    Exists,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
)

__all__ = ["col", "lit", "null", "table", "select", "select_star", "exists", "ConditionExpr"]


@dataclass(frozen=True)
class ConditionExpr:
    """A condition wrapper supporting ``&``, ``|`` and ``~``."""

    node: Condition

    def __and__(self, other: "ConditionExpr") -> "ConditionExpr":
        return ConditionExpr(And(self.node, _cond(other)))

    def __or__(self, other: "ConditionExpr") -> "ConditionExpr":
        return ConditionExpr(Or(self.node, _cond(other)))

    def __invert__(self) -> "ConditionExpr":
        return ConditionExpr(Not(self.node))


def _cond(value: Union[ConditionExpr, Condition]) -> Condition:
    return value.node if isinstance(value, ConditionExpr) else value


class TermExpr:
    """A term with comparison combinators."""

    def __init__(self, term: Term, alias: Optional[Name] = None):
        self.term = term
        self.alias = alias

    def as_(self, alias: Name) -> "TermExpr":
        return TermExpr(self.term, alias)

    # -- comparisons ------------------------------------------------------------

    def _binary(self, op: str, other) -> ConditionExpr:
        return ConditionExpr(Predicate(op, (self.term, _term(other))))

    def eq(self, other) -> ConditionExpr:
        return self._binary("=", other)

    def ne(self, other) -> ConditionExpr:
        return self._binary("<>", other)

    def lt(self, other) -> ConditionExpr:
        return self._binary("<", other)

    def le(self, other) -> ConditionExpr:
        return self._binary("<=", other)

    def gt(self, other) -> ConditionExpr:
        return self._binary(">", other)

    def ge(self, other) -> ConditionExpr:
        return self._binary(">=", other)

    def like(self, pattern: str) -> ConditionExpr:
        return self._binary("LIKE", pattern)

    def is_null(self) -> ConditionExpr:
        return ConditionExpr(IsNull(self.term))

    def is_not_null(self) -> ConditionExpr:
        return ConditionExpr(IsNull(self.term, negated=True))

    def in_(self, query: Union["SelectBuilder", Query]) -> ConditionExpr:
        return ConditionExpr(InQuery((self.term,), _query(query)))

    def not_in(self, query: Union["SelectBuilder", Query]) -> ConditionExpr:
        return ConditionExpr(InQuery((self.term,), _query(query), negated=True))


def _term(value) -> Term:
    if isinstance(value, TermExpr):
        return value.term
    if value is None:
        return NULL
    return value


def col(name: str) -> TermExpr:
    """A column reference: ``col("R.A")`` (qualified) or ``col("A")`` (bare)."""
    if "." in name:
        return TermExpr(FullName.parse(name))
    return TermExpr(BareColumn(name))


def lit(value: Union[int, str]) -> TermExpr:
    """A constant term."""
    return TermExpr(value)


def null() -> TermExpr:
    """The NULL term."""
    return TermExpr(NULL)


@dataclass(frozen=True)
class TableRef:
    """A FROM item under construction."""

    source: Union[Name, Query]
    alias: Optional[Name] = None
    columns: Optional[Tuple[Name, ...]] = None

    def as_(self, alias: Name, *columns: Name) -> "TableRef":
        return TableRef(self.source, alias, tuple(columns) or None)

    def _item(self) -> FromItem:
        alias = self.alias
        if alias is None:
            if not isinstance(self.source, str):
                raise ValueError("a subquery in FROM needs .as_(alias)")
            alias = self.source
        return FromItem(self.source, alias, self.columns)


def table(name: Name) -> TableRef:
    """A base-table FROM item (aliased to itself unless ``.as_()`` is used)."""
    return TableRef(name)


class SelectBuilder:
    """Accumulates a SELECT block; every method returns a new builder."""

    def __init__(
        self,
        items: Union[Tuple[SelectItem, ...], object],
        from_items: Tuple[FromItem, ...] = (),
        where: Condition = TRUE_COND,
        is_distinct: bool = False,
        alias: Optional[Name] = None,
        columns: Optional[Tuple[Name, ...]] = None,
    ):
        self._items = items
        self._from = from_items
        self._where = where
        self._distinct = is_distinct
        self._alias = alias
        self._columns = columns

    def from_(self, *sources: Union[TableRef, "SelectBuilder", Query]) -> "SelectBuilder":
        items: List[FromItem] = []
        for source in sources:
            if isinstance(source, TableRef):
                items.append(source._item())
            elif isinstance(source, SelectBuilder):
                if source._alias is None:
                    raise ValueError("a subquery in FROM needs .as_(alias)")
                items.append(
                    FromItem(source.build(), source._alias, source._columns)
                )
            else:
                raise TypeError(f"not a FROM source: {source!r}")
        return SelectBuilder(
            self._items, self._from + tuple(items), self._where, self._distinct,
            self._alias, self._columns,
        )

    def where(self, condition: Union[ConditionExpr, Condition]) -> "SelectBuilder":
        return SelectBuilder(
            self._items, self._from, _cond(condition), self._distinct,
            self._alias, self._columns,
        )

    def distinct(self) -> "SelectBuilder":
        return SelectBuilder(
            self._items, self._from, self._where, True, self._alias, self._columns
        )

    def as_(self, alias: Name, *columns: Name) -> "SelectBuilder":
        return SelectBuilder(
            self._items, self._from, self._where, self._distinct, alias,
            tuple(columns) or None,
        )

    # -- set operations ----------------------------------------------------------

    def union(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("UNION", self.build(), _query(other), all=all))

    def intersect(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("INTERSECT", self.build(), _query(other), all=all))

    def except_(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("EXCEPT", self.build(), _query(other), all=all))

    def build(self) -> Select:
        if not self._from:
            raise ValueError("a SELECT needs at least one FROM item")
        return Select(self._items, self._from, self._where, distinct=self._distinct)


class QueryBuilder:
    """A built set-operation query that can keep composing."""

    def __init__(self, query: Query):
        self._query = query

    def union(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("UNION", self._query, _query(other), all=all))

    def intersect(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("INTERSECT", self._query, _query(other), all=all))

    def except_(self, other, all: bool = False) -> "QueryBuilder":
        return QueryBuilder(SetOp("EXCEPT", self._query, _query(other), all=all))

    def build(self) -> Query:
        return self._query


def _query(value) -> Query:
    if isinstance(value, (SelectBuilder, QueryBuilder)):
        return value.build()
    return value


def select(*items: Union[TermExpr, int, str]) -> SelectBuilder:
    """Start a SELECT with explicit items (terms or constants)."""
    built: List[SelectItem] = []
    for item in items:
        if isinstance(item, TermExpr):
            alias = item.alias or ""
            built.append(SelectItem(item.term, alias))
        else:
            built.append(SelectItem(_term(item), ""))
    return SelectBuilder(tuple(built))


def select_star() -> SelectBuilder:
    """Start a SELECT *."""
    return SelectBuilder(STAR)


def exists(query: Union[SelectBuilder, QueryBuilder, Query]) -> ConditionExpr:
    """An EXISTS condition."""
    return ConditionExpr(Exists(_query(query)))
