"""The Section 4 validation campaign: formal semantics vs reference engine.

For each trial the runner generates a random query and a random database,
evaluates the query with the variant-adjusted formal semantics and with the
matching reference-engine dialect, and compares the outcomes under the
correctness criterion.  Two variants are provided, mirroring the paper's
two adjusted implementations:

* ``postgres`` — compositional star semantics against the positional-star
  engine dialect (no ambiguity errors can arise from ``SELECT *``);
* ``oracle`` — the standard Figures 4–7 semantics (with a compile-time
  ambiguity check, as Oracle rejects such queries before execution) against
  the name-based engine dialect.

The paper ran 100,000 trials per variant and observed full agreement; the
runner reproduces that experiment at any scale.

The runner owns the *per-trial* logic (seed → query → database → compared
outcome); campaign *execution* — sharding across worker processes,
checkpointing, resume, aggregation — lives in :mod:`repro.campaigns`, for
which this class is the ``validation`` backend.  :meth:`ValidationRunner.run`
is the backward-compatible serial entry point delegating to that core; use
``python -m repro validate --jobs N`` (or :func:`repro.campaigns.run_campaign`
directly) for paper-scale runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.schema import Database, Schema, validation_schema
from ..engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from ..generator.config import GeneratorConfig, PAPER_CONFIG
from ..generator.datafiller import DataFillerConfig, fill_database
from ..generator.queries import QueryGenerator
from ..semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from ..sql.ast import Query
from ..sql.typecheck import check_query
from .compare import Outcome, capture, explain_difference

__all__ = ["ValidationRunner", "TrialResult", "CampaignReport", "VARIANTS"]

VARIANTS = ("postgres", "oracle")


@dataclass(frozen=True)
class TrialResult:
    """One compared trial."""

    seed: int
    agreed: bool
    semantics: Outcome
    engine: Outcome
    query: Query

    @property
    def both_errored(self) -> bool:
        return self.semantics.is_error and self.engine.is_error


@dataclass
class CampaignReport:
    """Aggregated results of a validation campaign."""

    variant: str
    trials: int = 0
    agreements: int = 0
    error_agreements: int = 0
    mismatches: List[TrialResult] = field(default_factory=list)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.trials if self.trials else 1.0

    def summary(self) -> str:
        return (
            f"variant={self.variant} trials={self.trials} "
            f"agreements={self.agreements} "
            f"(of which both-error: {self.error_agreements}) "
            f"mismatches={len(self.mismatches)} "
            f"rate={self.agreement_rate:.4%}"
        )


class ValidationRunner:
    """Compares the formal semantics against the engine on random inputs."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        variant: str = "postgres",
        generator_config: GeneratorConfig = PAPER_CONFIG,
        data_config: Optional[DataFillerConfig] = None,
        vectorized: bool = False,
    ):
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
        self.schema = schema if schema is not None else validation_schema()
        self.variant = variant
        self.generator_config = generator_config
        # Small default row cap: the semantics computes Cartesian products,
        # and the shape of the experiment does not depend on table size.
        self.data_config = (
            data_config
            if data_config is not None
            else DataFillerConfig(max_rows=6)
        )
        # plan_cache_size=0: every campaign trial generates a *fresh* query,
        # so plan-cache lookups can never hit — they would only tax each
        # trial with AST hashing, LRU bookkeeping and the unbind walk
        # (~7% of campaign throughput, measured).  Workloads that do repeat
        # queries (the equivalence checker, direct Engine use) keep the
        # default cache.  This also keeps trial plans *interpreted*: the
        # closure compiler hooks in at plan-cache admission only, and for a
        # plan executed once over 6-row tables closure generation costs
        # more than it saves (see repro.engine.compile).  The columnar tier
        # compiles even single-use plans, but at this scale its codegen
        # likewise costs more than batch execution saves (~1.5x slower
        # serial campaigns, measured — scripts/bench.py records the A/B),
        # so ``vectorized`` stays an ablation knob here rather than the
        # default.
        self.vectorized = vectorized
        if variant == "postgres":
            self.star_style = STAR_COMPOSITIONAL
            self.semantics = SqlSemantics(self.schema, star_style=STAR_COMPOSITIONAL)
            self.engine = Engine(
                self.schema, DIALECT_POSTGRES, plan_cache_size=0,
                vectorized=vectorized,
            )
        else:
            self.star_style = STAR_STANDARD
            self.semantics = SqlSemantics(self.schema, star_style=STAR_STANDARD)
            self.engine = Engine(
                self.schema, DIALECT_ORACLE, plan_cache_size=0,
                vectorized=vectorized,
            )

    # -- single trial ---------------------------------------------------------

    def run_trial(self, seed: int) -> TrialResult:
        rng = random.Random(seed)
        generator = QueryGenerator(self.schema, self.generator_config, rng)
        query = generator.generate()
        db = fill_database(self.schema, rng, self.data_config)
        return self.compare(query, db, seed=seed)

    def compare(self, query: Query, db: Database, seed: int = -1) -> TrialResult:
        def semantics_side():
            # The static check mirrors the RDBMS compiler: ambiguous
            # references are rejected before evaluation.
            check_query(query, self.schema, star_style=self.star_style)
            return self.semantics.run(query, db)

        semantics_outcome = capture(semantics_side)
        engine_outcome = capture(lambda: self.engine.execute(query, db))
        agreed = semantics_outcome.agrees_with(engine_outcome)
        return TrialResult(seed, agreed, semantics_outcome, engine_outcome, query)

    # -- campaign ---------------------------------------------------------------

    def run(self, trials: int, base_seed: int = 0) -> CampaignReport:
        """Run a serial campaign through the unified execution core.

        This is the backward-compatible entry point: it delegates to
        :func:`repro.campaigns.run_campaign` (the sharded/checkpointed
        subsystem the CLI and benchmarks drive directly) with ``jobs=1``
        and rebuilds the rich :class:`TrialResult` for each mismatching
        seed — trials are seed-deterministic, so re-running a seed
        reproduces its result exactly.
        """
        from ..campaigns import ValidationBackend, run_campaign

        result = run_campaign(
            ValidationBackend(self), trials=trials, base_seed=base_seed
        )
        return CampaignReport(
            variant=self.variant,
            trials=result.completed,
            agreements=result.agreements,
            error_agreements=result.error_agreements,
            mismatches=[self.run_trial(seed) for seed in result.mismatch_seeds],
        )

    def explain(self, result: TrialResult) -> str:
        from ..sql.printer import print_query

        return (
            f"seed {result.seed}: {explain_difference(result.semantics, result.engine)}\n"
            f"  query: {print_query(result.query)}"
        )
