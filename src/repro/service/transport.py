"""Shared authenticated JSON-over-HTTP transport.

One transport, two servers: the campaign coordinator
(:class:`repro.campaigns.distributed.CoordinatorServer`) and the query
service (:mod:`repro.service.server`) speak the same small JSON-over-HTTP
dialect, so its mechanics live here once:

* **Shared-secret auth.**  Requests carry the secret in the
  :data:`AUTH_HEADER` header; servers compare with
  :func:`hmac.compare_digest` (constant-time, no length leak) and answer
  401 on mismatch.  A server constructed without a secret accepts
  everything — the trusted-localhost default the tests and single-machine
  campaigns use.
* **Chunked submits.**  :func:`read_body` honours both ``Content-Length``
  and ``Transfer-Encoding: chunked`` requests, and :func:`http_json` can
  send chunked bodies (``chunked=True``), so a worker streaming a large
  record batch never has to buffer it twice to learn its length.
* **Retry with backoff.**  :func:`http_json` retries connection-level
  failures (refused, reset — the shape of a coordinator or service
  restart, where the request never reached the application) with
  exponential backoff before giving up.  A *timeout*, though, is
  ambiguous: the request may have been sent and processed with only the
  response lost, so retrying re-executes it.  Timeouts are therefore only
  retried when the caller declares the request ``idempotent=True``
  (re-execution is harmless: GET /status, lease polls whose overlap the
  coordinator deduplicates) — never by default, which is what keeps a
  non-idempotent ``/submit`` from being silently replayed.  HTTP error
  *responses* are never retried: a 409 conflict is an answer, not an
  outage, and re-sending it would not change the server's mind.

The asyncio query service implements its own event-loop server (it
streams), but reuses the auth check and header name from here, so one
secret rotates both front ends.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

__all__ = [
    "AUTH_HEADER",
    "auth_headers",
    "check_secret",
    "read_chunked",
    "JsonRequestHandler",
    "JsonHttpServer",
    "http_json",
]

#: Header carrying the shared secret on every authenticated request.
AUTH_HEADER = "X-Repro-Secret"


def auth_headers(secret: Optional[str]) -> Dict[str, str]:
    """The request headers that authenticate against ``secret`` (empty when
    no secret is configured)."""
    return {AUTH_HEADER: secret} if secret else {}


def check_secret(provided: Optional[str], secret: Optional[str]) -> bool:
    """Constant-time secret check; a server without a secret accepts all."""
    if not secret:
        return True
    if provided is None:
        return False
    return hmac.compare_digest(str(provided).encode(), secret.encode())


def read_chunked(rfile) -> bytes:
    """Decode a ``Transfer-Encoding: chunked`` request body from ``rfile``."""
    body = bytearray()
    while True:
        size_line = rfile.readline(65536).strip()
        if not size_line:
            break
        # Chunk extensions (";ext=val") are permitted by the RFC; ignore.
        size = int(size_line.split(b";", 1)[0], 16)
        if size == 0:
            # Consume the trailer section up to the final blank line.
            while True:
                trailer = rfile.readline(65536)
                if trailer in (b"\r\n", b"\n", b""):
                    break
            break
        chunk = rfile.read(size)
        body.extend(chunk)
        rfile.readline(65536)  # CRLF after each chunk
    return bytes(body)


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Base handler for JSON request/response endpoints.

    Subclasses implement ``do_GET`` / ``do_POST`` with :meth:`_read_json`
    and :meth:`_send`, and call :meth:`_authorized` first — the server
    object carries the (optional) shared secret as ``server.secret``.
    """

    protocol_version = "HTTP/1.1"

    def _send(self, payload: Dict[str, object], status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        if (self.headers.get("Transfer-Encoding") or "").lower() == "chunked":
            raw = read_chunked(self.rfile)
        else:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode() or "{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _authorized(self) -> bool:
        """True when the request's secret matches the server's; answers the
        401 itself otherwise, so callers just ``return`` on False."""
        secret = getattr(self.server, "secret", None)
        if check_secret(self.headers.get(AUTH_HEADER), secret):
            return True
        self._send({"error": "unauthorized"}, 401)
        return False

    def log_message(self, *_args) -> None:  # quiet by default
        pass


class JsonHttpServer:
    """A threaded stdlib HTTP server around a :class:`JsonRequestHandler`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    bound address either way.  Keyword attributes are pinned onto the
    underlying server object, which is how handlers reach their
    application state (``server.coordinator``, ``server.secret``, …).
    Use as a context manager or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        handler,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: Optional[str] = None,
        name: str = "repro-http",
        **attrs,
    ):
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.secret = secret  # type: ignore[attr-defined]
        for key, value in attrs.items():
            setattr(self._httpd, key, value)
        self._name = name
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "JsonHttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=self._name, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "JsonHttpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _is_timeout(exc: OSError) -> bool:
    """Did this failure happen *after* the request may have been sent?

    ``urllib`` wraps socket timeouts in ``URLError`` with the timeout as
    its ``reason``; a bare ``TimeoutError`` comes from reads on the open
    response.  Either way the server may have processed the request.
    """
    reason = getattr(exc, "reason", None)
    return isinstance(exc, TimeoutError) or isinstance(reason, TimeoutError)


def http_json(
    url: str,
    payload: Optional[Dict[str, object]] = None,
    timeout_s: float = 60.0,
    secret: Optional[str] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    chunked: bool = False,
    idempotent: bool = False,
) -> Dict[str, object]:
    """POST (or GET when ``payload`` is None) and decode a JSON reply.

    Connection-level failures — refused, reset, DNS: the shape of a
    server restart, where the request never reached the application — are
    retried up to ``retries`` times with doubling backoff.  A **timeout**
    is different: the request may have been sent and *processed*, with
    only the response lost, so a retry re-executes it server-side.
    Timeouts are retried only with ``idempotent=True`` — callers must tag
    requests whose re-execution is harmless — and raise immediately
    otherwise.  HTTP error responses (4xx/5xx) raise immediately in all
    cases: they are answers, and callers distinguish them by status
    (``urllib.error.HTTPError``).
    """
    import urllib.error
    import urllib.request

    from .. import faults

    headers = dict(auth_headers(secret))
    data = None
    if payload is not None:
        encoded = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
        # An iterable body with no Content-Length makes urllib send
        # Transfer-Encoding: chunked (per RFC 7230) — the large-submit
        # path that never buffers to learn its own length.
        data = iter([encoded]) if chunked else encoded
    delay = backoff_s
    attempt = 0
    while True:
        try:
            if faults.fire("transport.slow"):
                time.sleep(0.005)
            if faults.fire("transport.connect"):
                raise faults.InjectedConnectionError(
                    f"injected connection drop before {url}"
                )
            request = urllib.request.Request(url, data=data, headers=headers)
            with urllib.request.urlopen(request, timeout=timeout_s) as response:
                reply = json.loads(response.read().decode())
            if faults.fire("transport.read_timeout"):
                # The request went through and was processed; only the
                # response is "lost".  Exactly the case a blind retry
                # would silently replay.
                raise faults.InjectedTimeout(
                    f"injected read timeout after {url} was processed"
                )
            return reply
        except urllib.error.HTTPError:
            raise
        except OSError as exc:
            if _is_timeout(exc) and not idempotent:
                raise
            if attempt >= retries:
                raise
            attempt += 1
            time.sleep(delay)
            delay *= 2
            if chunked and payload is not None:
                data = iter([json.dumps(payload).encode()])
