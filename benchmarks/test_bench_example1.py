"""Experiment E1 (Example 1): three inequivalent difference queries.

Paper claim: on D with R = {1, NULL} and S = {NULL},

    Q1(D) = ∅        (NOT IN)
    Q2(D) = {1,NULL} (NOT EXISTS rewriting)
    Q3(D) = {1}      (EXCEPT)

The bench evaluates all three on every implementation in the repository and
prints the rows the paper reports.
"""

from repro.algebra import RASemantics, sql_to_ra
from repro.core import NULL, Database, Schema
from repro.engine import Engine
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from repro.sql import annotate
from repro.validation.report import format_table

from .conftest import print_banner

QUERIES = {
    "Q1": "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
    "Q2": "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
    "(SELECT * FROM S WHERE S.A = R.A)",
    "Q3": "SELECT R.A FROM R EXCEPT SELECT S.A FROM S",
}

EXPECTED = {"Q1": "∅", "Q2": "{1, NULL}", "Q3": "{1}"}


def render(table):
    rows = sorted(table.bag, key=repr)
    if not rows:
        return "∅"
    return "{" + ", ".join(str(r[0]) for r in rows) + "}"


def run_example1():
    schema = Schema({"R": ("A",), "S": ("A",)})
    db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    implementations = {
        "semantics (standard)": SqlSemantics(schema, star_style=STAR_STANDARD).run,
        "semantics (compositional)": SqlSemantics(
            schema, star_style=STAR_COMPOSITIONAL
        ).run,
        "engine (postgres)": Engine(schema, "postgres").execute,
        "engine (oracle)": Engine(schema, "oracle").execute,
    }
    ra = RASemantics(schema)
    rows = []
    for name, text in QUERIES.items():
        q = annotate(text, schema)
        results = {impl: render(fn(q, db)) for impl, fn in implementations.items()}
        if name != "Q2":  # Q2 uses SELECT * — not a data manipulation query
            results["pure RA (Thm 1)"] = render(ra.evaluate(sql_to_ra(q, schema), db))
        else:
            results["pure RA (Thm 1)"] = "n/a"
        rows.append((name, EXPECTED[name], *results.values()))
    headers = (
        "query",
        "paper",
        "sem std",
        "sem comp",
        "engine pg",
        "engine ora",
        "pure RA",
    )
    return headers, rows


def test_bench_example1(benchmark):
    headers, rows = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    print_banner("E1 — Example 1: Q1(D)=∅, Q2(D)={1,NULL}, Q3(D)={1}")
    print(format_table(headers, rows))
    by_query = {row[0]: row for row in rows}
    assert by_query["Q1"][2:] == ("∅",) * 5
    assert by_query["Q2"][2:6] == ("{1, NULL}",) * 4
    assert by_query["Q3"][2:] == ("{1}",) * 5
