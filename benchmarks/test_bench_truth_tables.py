"""Experiment F1 (Figure 1): the truth tables of SQL's 3VL.

Regenerates the ∧, ∨, ¬ tables of Figure 1 from the implementation and
checks them cell by cell against the paper's figure.
"""

from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.validation.report import format_table

from .conftest import print_banner

ORDER = (TRUE, FALSE, UNKNOWN)

PAPER_AND = {
    ("t", "t"): "t", ("t", "f"): "f", ("t", "u"): "u",
    ("f", "t"): "f", ("f", "f"): "f", ("f", "u"): "f",
    ("u", "t"): "u", ("u", "f"): "f", ("u", "u"): "u",
}
PAPER_OR = {
    ("t", "t"): "t", ("t", "f"): "t", ("t", "u"): "t",
    ("f", "t"): "t", ("f", "f"): "f", ("f", "u"): "u",
    ("u", "t"): "t", ("u", "f"): "u", ("u", "u"): "u",
}
PAPER_NOT = {"t": "f", "f": "t", "u": "u"}


def build_tables():
    conj = {(a.name, b.name): (a & b).name for a in ORDER for b in ORDER}
    disj = {(a.name, b.name): (a | b).name for a in ORDER for b in ORDER}
    neg = {a.name: (~a).name for a in ORDER}
    return conj, disj, neg


def binary_rows(table):
    return [
        (a.name, *[table[(a.name, b.name)] for b in ORDER]) for a in ORDER
    ]


def test_bench_truth_tables(benchmark):
    conj, disj, neg = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    print_banner("F1 — Figure 1: Kleene truth tables for SQL's 3VL")
    print("conjunction (∧):")
    print(format_table(("∧", "t", "f", "u"), binary_rows(conj)))
    print("disjunction (∨):")
    print(format_table(("∨", "t", "f", "u"), binary_rows(disj)))
    print("negation (¬):")
    print(format_table(("x", "¬x"), [(k, v) for k, v in neg.items()]))
    assert conj == PAPER_AND
    assert disj == PAPER_OR
    assert neg == PAPER_NOT
