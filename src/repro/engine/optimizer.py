"""Plan-rewrite optimizer of the reference engine.

The planner emits the paper-faithful naive plan — every FROM clause is a
Cartesian product with the whole WHERE clause filtered on top, and every
subquery predicate re-executes its subplan per probing row.  This module
rewrites that tree into an equivalent but drastically cheaper one:

* **selection pushdown** — WHERE conjuncts whose depth-0 references fall
  inside a single join child are re-indexed and evaluated below the join,
  and every other conjunct is applied at the earliest left-deep prefix that
  covers its columns (filter-during-product instead of product-then-filter);
* **hash equi-joins** — an equality conjunct between column references of
  two different children turns the Cartesian product into a
  :class:`~repro.engine.operators.HashJoin` on typed, NULL-rejecting keys;
* **subquery caching** — a *closed* EXISTS/IN subplan (one with no outer
  references, per :meth:`~repro.engine.operators.PlanNode.free_refs`) is
  materialized once: EXISTS becomes a cached boolean
  (:class:`~repro.engine.operators.ExistsProbe`) and IN becomes a frozenset
  semi-join probe with 3VL-correct NULL handling
  (:class:`~repro.engine.operators.SemiJoinProbe`);
* **streaming** — correlated EXISTS probes use the operators' generator
  iteration and stop at the first row.

Semantics: on *well-typed* inputs — data on which no predicate can raise at
runtime, which is everything the type checker (:mod:`repro.sql.typecheck`)
admits and everything the Section 4 campaigns generate — the rewrites
preserve results exactly: 3VL conjunction is commutative and associative,
and the differential and validation campaigns in :mod:`repro.validation`
check the optimized engine against the formal semantics of Figures 5–7 on
both dialect variants.  On *ill-typed* data (a type clash inside an ordered
comparison, LIKE on a non-string) the optimized plan may evaluate a
predicate on more or fewer rows than the naive And-chain — filters are
relocated, hash joins drop NULL keys early, EXISTS stops at the first
row — so whether, and which, runtime error surfaces is not preserved: a
query that naively returned a table may raise, or vice versa.  That is the
latitude real systems take (SQL leaves evaluation order unspecified, and
the RDBMSs the engine stands in for reject such queries at compile time).
``Engine(..., optimize=False)`` retains the naive path bit-for-bit, for
ablations and as an escape hatch.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, List, Optional, Sequence, Tuple

from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    NotPred,
    OrPred,
)
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    HashJoin,
    InPred,
    PlanNode,
    ProjectOp,
    SemiJoinProbe,
    SetOpNode,
    StaticScan,
    TableScan,
    _sub_refs,
    pred_refs,
)

__all__ = ["optimize_plan"]

Pred = Callable


def optimize_plan(plan: PlanNode) -> PlanNode:
    """Rewrite a compiled plan into its optimized physical form."""
    if isinstance(plan, FilterOp):
        conjuncts = [_rewrite_pred(c) for c in _flatten_and(plan.predicate)]
        child = plan.child
        if isinstance(child, CrossJoin) and len(child.children) > 1:
            children = [_optimize_from_item(c) for c in child.children]
            joined = _build_join(children, conjuncts)
            if joined is not None:
                return joined
            return FilterOp(CrossJoin(children), _combine(conjuncts))
        return FilterOp(optimize_plan(child), _combine(conjuncts))
    if isinstance(plan, ProjectOp):
        return ProjectOp(optimize_plan(plan.child), plan.expressions)
    if isinstance(plan, DistinctOp):
        return DistinctOp(optimize_plan(plan.child))
    if isinstance(plan, SetOpNode):
        return SetOpNode(
            plan.op, plan.all, optimize_plan(plan.left), optimize_plan(plan.right)
        )
    if isinstance(plan, CrossJoin):
        return CrossJoin([_optimize_from_item(child) for child in plan.children])
    # StaticScan and already-optimized nodes are left untouched.
    return plan


def _optimize_from_item(child: PlanNode) -> PlanNode:
    """Optimize one FROM child; materialize it once if it is closed.

    A closed FROM-subquery (no outer references) always produces the same
    rows, yet a plan sitting inside a correlated WHERE subquery re-executes
    per probing row — :class:`~repro.engine.operators.CachedSubplan` makes
    that a replay.  Scans are already materialized, so only derived plans
    are wrapped.
    """
    optimized = optimize_plan(child)
    if (
        not isinstance(optimized, (StaticScan, TableScan, CachedSubplan))
        and optimized.free_refs() == frozenset()
    ):
        return CachedSubplan(optimized)
    return optimized


# -- predicates --------------------------------------------------------------


def _flatten_and(pred: Pred) -> List[Pred]:
    """The top-level conjuncts of a predicate, in evaluation order."""
    if isinstance(pred, AndPred):
        return _flatten_and(pred.left) + _flatten_and(pred.right)
    return [pred]


def _combine(conjuncts: Sequence[Pred]) -> Pred:
    """Left-fold conjuncts back into an AND chain (preserving order)."""
    if not conjuncts:
        return ConstPred(True)
    return reduce(AndPred, conjuncts)


def _rewrite_pred(pred: Pred) -> Pred:
    """Optimize subplans inside a predicate; cache the closed ones."""
    if isinstance(pred, AndPred):
        return AndPred(_rewrite_pred(pred.left), _rewrite_pred(pred.right))
    if isinstance(pred, OrPred):
        return OrPred(_rewrite_pred(pred.left), _rewrite_pred(pred.right))
    if isinstance(pred, NotPred):
        return NotPred(_rewrite_pred(pred.operand))
    if isinstance(pred, (ExistsPred, ExistsProbe)):
        subplan = optimize_plan(pred.subplan)
        free = subplan.free_refs()
        if free == frozenset():
            return ExistsProbe(subplan, closed=True)
        return ExistsProbe(subplan, memo_refs=_sub_refs(free))
    if isinstance(pred, InPred):
        subplan = optimize_plan(pred.subplan)
        free = subplan.free_refs()
        if free == frozenset():
            # No CachedSubplan needed: the probe materializes exactly once.
            return SemiJoinProbe(pred.exprs, subplan, pred.negated)
        return InPred(pred.exprs, subplan, pred.negated, memo_refs=_sub_refs(free))
    # ComparePred / IsNullPred / ConstPred / opaque callables.
    return pred


# -- join construction -------------------------------------------------------


class _Conjunct:
    """One WHERE conjunct with its placement analysis."""

    __slots__ = ("pred", "local", "max_local", "order")

    def __init__(self, pred: Pred, order: int, total_width: int):
        self.pred = pred
        self.order = order
        refs = pred_refs(pred)
        if refs is None:
            # Opaque: assume it reads the whole row; apply at full width.
            self.local = None
            self.max_local = total_width - 1
        else:
            self.local = frozenset(i for d, i in refs if d == 0)
            self.max_local = max(self.local, default=-1)


def _equi_endpoints(pred: Pred) -> Optional[Tuple[int, int]]:
    """(i, j) column indices if pred is ``row[i] = row[j]``, else None."""
    if (
        isinstance(pred, ComparePred)
        and pred.op == "="
        and isinstance(pred.left, ColumnRef)
        and isinstance(pred.right, ColumnRef)
        and pred.left.depth == 0
        and pred.right.depth == 0
    ):
        return pred.left.index, pred.right.index
    return None


def _build_join(
    children: List[PlanNode], conjuncts: Sequence[Pred]
) -> Optional[PlanNode]:
    """A left-deep join tree with pushed filters and hash equi-joins.

    Children stay in FROM order so the output row layout is unchanged; a
    left-deep prefix therefore occupies exactly the first ``width`` columns
    of the final row, which lets prefix filters (including correlated
    subquery probes, whose depth-1 references index the probing row) run
    without any re-indexing.  Returns None when child widths are unknown.
    """
    widths = [child.width() for child in children]
    if any(w is None for w in widths):
        return None
    offsets = []
    total = 0
    for w in widths:
        offsets.append(total)
        total += w

    def span_of(index: int) -> int:
        for k in range(len(children) - 1, -1, -1):
            if index >= offsets[k]:
                return k
        raise AssertionError(f"column index {index} out of range")

    child_filters: List[List[Pred]] = [[] for _ in children]
    edges: List[Tuple[int, int, Pred]] = []  # (global i, global j, pred)
    staged: List[_Conjunct] = []
    for order, pred in enumerate(conjuncts):
        analysis = _Conjunct(pred, order, total)
        endpoints = _equi_endpoints(pred)
        if endpoints is not None and span_of(endpoints[0]) != span_of(endpoints[1]):
            edges.append((endpoints[0], endpoints[1], pred))
            continue
        if analysis.local is not None:
            spans = {span_of(i) for i in analysis.local}
            target = spans.pop() if len(spans) == 1 else None
            if target is not None:
                shifted = getattr(pred, "shifted", lambda _off: None)(
                    offsets[target]
                )
                if shifted is not None:
                    child_filters[target].append(shifted)
                    continue
        staged.append(analysis)

    planned = [
        FilterOp(child, _combine(filters)) if filters else child
        for child, filters in zip(children, child_filters)
    ]

    def apply_stage(plan: PlanNode, width: int) -> PlanNode:
        ready = [c for c in staged if c.max_local < width]
        if not ready:
            return plan
        for c in ready:
            staged.remove(c)
        return FilterOp(plan, _combine([c.pred for c in ready]))

    current = apply_stage(planned[0], widths[0])
    width = widths[0]
    for k in range(1, len(children)):
        span_lo, span_hi = offsets[k], offsets[k] + widths[k]
        usable = [
            e
            for e in edges
            if (e[0] < width and span_lo <= e[1] < span_hi)
            or (e[1] < width and span_lo <= e[0] < span_hi)
        ]
        if usable:
            left_keys = []
            right_keys = []
            for i, j, _pred in usable:
                prefix_side, child_side = (i, j) if i < width else (j, i)
                left_keys.append(prefix_side)
                right_keys.append(child_side - span_lo)
            edges = [e for e in edges if e not in usable]
            current = HashJoin(
                current, planned[k], tuple(left_keys), tuple(right_keys)
            )
        else:
            current = CrossJoin([current, planned[k]])
        width += widths[k]
        current = apply_stage(current, width)
    assert not staged and not edges, "unplaced conjuncts in join build"
    return current
