"""Real-schema, real-data scenario ingestion.

The validation campaigns of Section 4 run over the fixed R1..R8 schema with
tiny synthetic instances.  This package points the same methodology at
*real* databases:

* :mod:`repro.ingest.importer` — map an existing SQLite database, SQL
  script, or CSV directory (tables, columns, inferred types, FK structure,
  NULLability) into :class:`~repro.core.schema.Schema` + tables, with
  sampling caps for 10⁴–10⁶-row sources, and export scenarios back out
  (the metamorphic round-trip);
* :mod:`repro.ingest.synth` — an FK-respecting skewed data synthesizer
  (Zipfian key reuse, configurable NULL rates) to scale a scenario up;
* :mod:`repro.ingest.generator` — FK-join-biased query generation against
  ingested schemas;
* :mod:`repro.ingest.workload` — service-bench workloads (the default R/S/
  T/U set, and builders deriving workloads from ingested scenarios);
* :mod:`repro.ingest.demo` — the FK-rich "library" scenario the bench and
  CI fixtures are built from.

The live-DBMS comparison that consumes these scenarios lives in
:mod:`repro.validation.live`.
"""

from .generator import (
    DEFAULT_SCENARIO_CONFIG,
    ScenarioGenerator,
    ScenarioGeneratorConfig,
)
from .importer import (
    export_sql_script,
    export_sqlite,
    import_csv_dir,
    import_scenario,
    import_sqlite,
)
from .scenario import (
    TYPE_INT,
    TYPE_TEXT,
    ForeignKey,
    Scenario,
    infer_column_types,
    table_fingerprint,
)
from .synth import SynthConfig, synthesize, synthesize_scenario

__all__ = [
    "ForeignKey",
    "Scenario",
    "TYPE_INT",
    "TYPE_TEXT",
    "table_fingerprint",
    "infer_column_types",
    "import_scenario",
    "import_sqlite",
    "import_csv_dir",
    "export_sqlite",
    "export_sql_script",
    "SynthConfig",
    "synthesize",
    "synthesize_scenario",
    "ScenarioGenerator",
    "ScenarioGeneratorConfig",
    "DEFAULT_SCENARIO_CONFIG",
]
