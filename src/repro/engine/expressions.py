"""Runtime expressions and truth handling for the reference engine.

The engine is the stand-in for PostgreSQL/Oracle in the Section 4 validation
experiment, so it is deliberately implemented *independently* of the formal
semantics: nulls are Python ``None`` (not the :data:`repro.core.values.NULL`
sentinel), truth values are ``True`` / ``False`` / ``None`` (unknown), and
column references are compiled to positional ``(depth, index)`` lookups into
the current row and the stack of outer rows — the way a real executor
resolves correlated references.

Only the input/output boundary converts between the two representations.

Besides the two row expressions (:class:`ColumnRef`, :class:`LiteralExpr`),
this module defines the *structured predicate nodes* the planner compiles
WHERE clauses into (:class:`ComparePred`, :class:`IsNullPred`,
:class:`AndPred`, …).  They are callables with the same
``(row, outers) -> Optional[bool]`` signature the operators expect, but —
unlike opaque closures — they expose which ``(depth, index)`` positions they
read (:func:`expr_refs` / the nodes' ``refs()``), which is what lets the
optimizer (:mod:`repro.engine.optimizer`) push filters below joins and turn
equality conjuncts into hash joins.  Depth 0 is the current row; depth k > 0
is the k-th enclosing row of a correlated subquery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..core.errors import CompileError

__all__ = [
    "Row",
    "OuterStack",
    "ColumnRef",
    "LiteralExpr",
    "RowExpr",
    "Refs",
    "expr_refs",
    "merge_refs",
    "shift_expr",
    "remap_expr",
    "substitute_expr",
    "PredNode",
    "ConstPred",
    "ComparePred",
    "IsNullPred",
    "AndPred",
    "OrPred",
    "NotPred",
    "and3",
    "or3",
    "not3",
    "compare",
    "COMPARE_FUNCS",
]

#: A runtime row: a tuple of ints/strings/None.
Row = Tuple[object, ...]

#: The stack of outer rows for correlated subqueries (innermost last).
OuterStack = Tuple[Row, ...]


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A compiled column reference: depth 0 is the current row, depth k > 0
    the k-th enclosing row on the outer stack."""

    depth: int
    index: int

    def __call__(self, row: Row, outers: OuterStack) -> object:
        if self.depth == 0:
            return row[self.index]
        return outers[-self.depth][self.index]

    def refs(self) -> "Refs":
        return frozenset({(self.depth, self.index)})


@dataclass(frozen=True, slots=True)
class LiteralExpr:
    """A constant (or None for SQL NULL)."""

    value: object

    def __call__(self, row: Row, outers: OuterStack) -> object:
        return self.value

    def refs(self) -> "Refs":
        return frozenset()


RowExpr = Callable[[Row, OuterStack], object]

#: The positions an expression or predicate reads: a set of (depth, index)
#: pairs, depth 0 being the current row.
Refs = FrozenSet[Tuple[int, int]]


def expr_refs(expr: RowExpr) -> Optional[Refs]:
    """The ``(depth, index)`` positions ``expr`` reads, or None if opaque."""
    method = getattr(expr, "refs", None)
    if method is None:
        return None
    return method()


def shift_expr(expr: RowExpr, offset: int) -> Optional[RowExpr]:
    """Re-index depth-0 references by ``-offset`` (for pushing a predicate
    below a join into the child starting at column ``offset``); None if the
    expression is not rewritable."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            return ColumnRef(0, expr.index - offset)
        return expr
    if isinstance(expr, LiteralExpr):
        return expr
    return None


def remap_expr(expr: RowExpr, mapping: Sequence[int]) -> Optional[RowExpr]:
    """Send depth-0 indices through ``mapping`` (old index → new index), for
    evaluating a predicate against a permuted column layout; None if the
    expression is not rewritable."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            return ColumnRef(0, mapping[expr.index])
        return expr
    if isinstance(expr, LiteralExpr):
        return expr
    return None


def substitute_expr(
    expr: RowExpr, replacements: Sequence[RowExpr]
) -> Optional[RowExpr]:
    """Replace depth-0 references by the projection expressions that produce
    them (for pushing a predicate below a :class:`~repro.engine.operators
    .ProjectOp` into its input layout); None if either the expression or the
    replacement it lands on is not rewritable."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            replacement = replacements[expr.index]
            if isinstance(replacement, (ColumnRef, LiteralExpr)):
                return replacement
            return None
        return expr
    if isinstance(expr, LiteralExpr):
        return expr
    return None


# -- three-valued connectives over True/False/None ---------------------------


def and3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def or3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def not3(a: Optional[bool]) -> Optional[bool]:
    if a is None:
        return None
    return not a


# -- comparisons -----------------------------------------------------------------


def _like(value: object, pattern: object) -> bool:
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise CompileError("LIKE is defined on strings only")
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def _ordered(op: str, a: object, b: object) -> bool:
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} {op} {b!r}")
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


COMPARE_FUNCS = {
    "=": lambda a, b: a == b and isinstance(a, str) == isinstance(b, str),
    "<>": lambda a, b: not (a == b and isinstance(a, str) == isinstance(b, str)),
    "<": lambda a, b: _ordered("<", a, b),
    "<=": lambda a, b: _ordered("<=", a, b),
    ">": lambda a, b: _ordered(">", a, b),
    ">=": lambda a, b: _ordered(">=", a, b),
    "LIKE": _like,
}


def compare(op: str, a: object, b: object) -> Optional[bool]:
    """SQL comparison: None (unknown) when either side is NULL."""
    if a is None or b is None:
        return None
    try:
        func = COMPARE_FUNCS[op]
    except KeyError:
        raise CompileError(f"unknown comparison operator: {op}") from None
    return func(a, b)


# -- predicate nodes ---------------------------------------------------------
#
# Structured, introspectable replacements for the closures the planner used
# to emit.  ``refs()`` returns the (depth, index) positions the predicate
# reads (None when it contains an opaque callable), and ``shifted(offset)``
# rebuilds the predicate with depth-0 indices re-based for evaluation inside
# a join child (None when the predicate cannot be safely relocated, e.g.
# because it contains a subquery).


#: Maps one row expression to its rewritten form, or None when impossible.
ExprRewrite = Callable[[RowExpr], Optional[RowExpr]]


class PredNode:
    """Base class of compiled WHERE predicates: a 3VL callable with refs."""

    __slots__ = ()

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        raise NotImplementedError

    def refs(self) -> Optional[Refs]:
        """All (depth, index) positions read, or None if not introspectable."""
        raise NotImplementedError

    def rewritten(self, fn: ExprRewrite) -> Optional["PredNode"]:
        """The same predicate with every row expression sent through ``fn``;
        None when the node (or a nested one, e.g. a subquery probe) cannot be
        rebuilt that way."""
        return None

    def shifted(self, offset: int) -> Optional["PredNode"]:
        """The same predicate with depth-0 indices shifted by ``-offset``."""
        return self.rewritten(lambda expr: shift_expr(expr, offset))

    def remapped(self, mapping: Sequence[int]) -> Optional["PredNode"]:
        """The same predicate with depth-0 indices sent through ``mapping``
        (old index → new index), for a permuted column layout."""
        return self.rewritten(lambda expr: remap_expr(expr, mapping))

    def substituted(self, replacements: Sequence[RowExpr]) -> Optional["PredNode"]:
        """The same predicate with depth-0 references replaced by the
        projection expressions producing them (pushing below a projection)."""
        return self.rewritten(lambda expr: substitute_expr(expr, replacements))


class ConstPred(PredNode):
    """The constant conditions TRUE and FALSE."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[bool]):
        self.value = value

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        return self.value

    def refs(self) -> Refs:
        return frozenset()

    def rewritten(self, fn: ExprRewrite) -> "ConstPred":
        return self


class ComparePred(PredNode):
    """A binary comparison ``t1 op t2`` under SQL's 3VL."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: RowExpr, right: RowExpr):
        self.op = op
        self.left = left
        self.right = right

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        return compare(self.op, self.left(row, outers), self.right(row, outers))

    def refs(self) -> Optional[Refs]:
        left = expr_refs(self.left)
        right = expr_refs(self.right)
        if left is None or right is None:
            return None
        return left | right

    def rewritten(self, fn: ExprRewrite) -> Optional["ComparePred"]:
        left = fn(self.left)
        right = fn(self.right)
        if left is None or right is None:
            return None
        return ComparePred(self.op, left, right)


class IsNullPred(PredNode):
    """``t IS [NOT] NULL`` — always two-valued."""

    __slots__ = ("expr", "negated")

    def __init__(self, expr: RowExpr, negated: bool = False):
        self.expr = expr
        self.negated = negated

    def __call__(self, row: Row, outers: OuterStack) -> bool:
        if self.negated:
            return self.expr(row, outers) is not None
        return self.expr(row, outers) is None

    def refs(self) -> Optional[Refs]:
        return expr_refs(self.expr)

    def rewritten(self, fn: ExprRewrite) -> Optional["IsNullPred"]:
        expr = fn(self.expr)
        if expr is None:
            return None
        return IsNullPred(expr, self.negated)


def merge_refs(*parts: Optional[Refs]) -> Optional[Refs]:
    """Union ref sets; an unknown (None) part poisons the whole union."""
    merged: Refs = frozenset()
    for part in parts:
        if part is None:
            return None
        merged |= part
    return merged


def _child_refs(*preds: Callable) -> Optional[Refs]:
    return merge_refs(*(expr_refs(pred) for pred in preds))


def _child_rewritten(pred: Callable, fn: ExprRewrite) -> Optional[Callable]:
    method = getattr(pred, "rewritten", None)
    return method(fn) if method is not None else None


class AndPred(PredNode):
    """3VL conjunction with the engine's left-to-right short-circuit."""

    __slots__ = ("left", "right")

    def __init__(self, left: Callable, right: Callable):
        self.left = left
        self.right = right

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        a = self.left(row, outers)
        if a is False:
            return False
        return and3(a, self.right(row, outers))

    def refs(self) -> Optional[Refs]:
        return _child_refs(self.left, self.right)

    def rewritten(self, fn: ExprRewrite) -> Optional["AndPred"]:
        left = _child_rewritten(self.left, fn)
        right = _child_rewritten(self.right, fn)
        if left is None or right is None:
            return None
        return AndPred(left, right)


class OrPred(PredNode):
    """3VL disjunction with the engine's left-to-right short-circuit."""

    __slots__ = ("left", "right")

    def __init__(self, left: Callable, right: Callable):
        self.left = left
        self.right = right

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        a = self.left(row, outers)
        if a is True:
            return True
        return or3(a, self.right(row, outers))

    def refs(self) -> Optional[Refs]:
        return _child_refs(self.left, self.right)

    def rewritten(self, fn: ExprRewrite) -> Optional["OrPred"]:
        left = _child_rewritten(self.left, fn)
        right = _child_rewritten(self.right, fn)
        if left is None or right is None:
            return None
        return OrPred(left, right)


class NotPred(PredNode):
    """3VL negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Callable):
        self.operand = operand

    def __call__(self, row: Row, outers: OuterStack) -> Optional[bool]:
        return not3(self.operand(row, outers))

    def refs(self) -> Optional[Refs]:
        return _child_refs(self.operand)

    def rewritten(self, fn: ExprRewrite) -> Optional["NotPred"]:
        operand = _child_rewritten(self.operand, fn)
        if operand is None:
            return None
        return NotPred(operand)
