"""Late binding and cache hygiene for reusable plans.

A plan compiled without a database (:class:`~repro.engine.planner.Planner`
with ``db=None``) contains :class:`~repro.engine.operators.TableScan` leaves
that name their base table but carry no rows.  Such a plan is a pure
function of ``(query, schema, dialect, optimize)`` and can be cached and
re-executed against any number of databases — provided that, before each
execution,

* every ``TableScan`` is bound to the current database's rows
  (:func:`bind_plan`), and
* every per-execution memo the optimizer introduced is cleared
  (:func:`reset_plan`): :class:`~repro.engine.operators.CachedSubplan`
  materializations, :class:`~repro.engine.operators.ExistsProbe` booleans
  and per-binding memos, :class:`~repro.engine.operators.InPred` binding
  memos, and :class:`~repro.engine.operators.SemiJoinProbe` probe sets —
  all of which are only valid for the database they were computed against.

:func:`iter_plan_nodes` / :func:`iter_predicates` walk the full operator
tree, *including* the subplans nested inside WHERE-clause predicates, which
is where most of the state lives.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..core.schema import Database
from ..core.values import Null
from .expressions import AndPred, NotPred, OrPred
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    HashJoin,
    InPred,
    PlanNode,
    ProjectOp,
    SemiJoinProbe,
    SetOpNode,
    TableScan,
)

__all__ = [
    "iter_plan_nodes",
    "iter_predicates",
    "bind_plan",
    "reset_plan",
    "unbind_plan",
]


def iter_predicates(pred) -> Iterator[object]:
    """Every predicate node reachable from ``pred`` (including itself)."""
    yield pred
    if isinstance(pred, (AndPred, OrPred)):
        yield from iter_predicates(pred.left)
        yield from iter_predicates(pred.right)
    elif isinstance(pred, NotPred):
        yield from iter_predicates(pred.operand)


def iter_plan_nodes(plan: PlanNode) -> Iterator[Tuple[PlanNode, object]]:
    """Walk a plan tree, yielding ``(node, None)`` for operators and
    ``(None, predicate)`` for the predicate nodes inside filters — and
    recursing into the subplans of EXISTS/IN predicates."""
    yield plan, None
    if isinstance(plan, CrossJoin):
        for child in plan.children:
            yield from iter_plan_nodes(child)
    elif isinstance(plan, (FilterOp,)):
        yield from iter_plan_nodes(plan.child)
        for pred in iter_predicates(plan.predicate):
            yield None, pred
            subplan = getattr(pred, "subplan", None)
            if subplan is not None:
                yield from iter_plan_nodes(subplan)
    elif isinstance(plan, (ProjectOp, DistinctOp, CachedSubplan)):
        yield from iter_plan_nodes(plan.child)
    elif isinstance(plan, (SetOpNode, HashJoin)):
        yield from iter_plan_nodes(plan.left)
        yield from iter_plan_nodes(plan.right)
    # TableScan / StaticScan are leaves.


def bind_plan(plan: PlanNode, db: Database) -> PlanNode:
    """Bind every :class:`TableScan` to ``db`` and reset execution caches.

    Returns the same plan object (mutated in place): binding is cheap — one
    tree walk — compared to re-planning and re-optimizing the query, which
    is the point of the plan cache.
    """
    for node, pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            node.data = [
                tuple(None if isinstance(v, Null) else v for v in record)
                for record in db.table(node.table).bag
            ]
        _reset_state(node, pred)
    return plan


def reset_plan(plan: PlanNode) -> PlanNode:
    """Clear the per-execution memos of a plan without rebinding tables."""
    for node, pred in iter_plan_nodes(plan):
        _reset_state(node, pred)
    return plan


def unbind_plan(plan: PlanNode) -> PlanNode:
    """Drop table data and memos so a cached plan holds no database rows.

    A plan sitting in the :class:`~repro.engine.Engine` cache would
    otherwise pin the last-executed database (scan rows, probe sets,
    subquery materializations) until its next execution overwrites them.
    """
    for node, pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            node.data = None
        _reset_state(node, pred)
    return plan


def _reset_state(node, pred) -> None:
    if isinstance(node, CachedSubplan):
        node._cache = None
    if isinstance(pred, ExistsProbe):
        pred._known = None
        pred._memo.clear()
    elif isinstance(pred, InPred):
        pred._memo.clear()
    elif isinstance(pred, SemiJoinProbe):
        pred._keys = None
        pred._null_rows = None
        pred._rows = None
    elif isinstance(pred, ExistsPred):
        pass  # stateless: re-executes its subplan every probe
