"""Values, NULL, names, full names and terms (Section 2 of the paper).

The paper assumes two countably infinite sets:

* **N** of *names*, used for tables and columns — modelled as Python strings;
* **C** of *data values* (constants) — modelled as Python ints and strings
  (the experiments of Section 4 only use ints; strings exercise the claim
  that a single set of values of all types suffices once queries type-check).

On top of these the paper builds:

* *full names* — pairs in N², written ``N1.N2`` (:class:`FullName`);
* SQL's null — a single distinguished element :data:`NULL` (:class:`Null`);
* *terms* — a constant, ``NULL``, or a full name (:data:`Term`);
* *records* — tuples over C ∪ {NULL}.

Python equality on values coincides with the paper's *syntactic equality*
(Definition 2): two values are syntactically equal iff they are the same
constant or both ``NULL``.  This is exactly the equality used by bags and by
SQL's set operations, and it is what makes :class:`repro.core.bag.Bag` keyed
by records behave correctly in the presence of nulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

__all__ = [
    "Null",
    "NULL",
    "Name",
    "FullName",
    "Constant",
    "Value",
    "Record",
    "Term",
    "is_value",
    "syntactically_equal",
]


class Null:
    """SQL's NULL: a singleton marker distinct from every constant.

    ``NULL == NULL`` is true *as Python equality* — this is the syntactic
    equality used by bag operations, matching the paper's observation that
    SQL set operations consider two NULLs equal.  Three-valued comparison of
    terms is implemented separately in the semantics, where comparing NULL
    with anything yields unknown.
    """

    _instance: "Null | None" = None

    __slots__ = ()

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.core.values.NULL")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __reduce__(self):
        return (Null, ())


NULL = Null()

#: A (column or table) name: an element of the paper's set N.
Name = str

#: A constant: an element of the paper's set C of data values.
Constant = Union[int, str]

#: A value stored in a table: a constant or NULL.
Value = Union[Constant, Null]

#: A record: a tuple of values (a row of a table).
Record = Tuple[Value, ...]


@dataclass(frozen=True, slots=True)
class FullName:
    """A full name ``N1.N2`` in N²: a table name qualifying an attribute.

    Full names are the column labels of the intermediate table produced by a
    FROM clause, and they are what SELECT/WHERE references resolve against.

    The hash is precomputed: full names key every environment update, making
    them the hottest hashed objects in the whole evaluator.
    """

    qualifier: Name
    attribute: Name
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.qualifier, self.attribute)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.attribute}"

    @staticmethod
    def parse(text: str) -> "FullName":
        """Parse ``"R.A"`` into ``FullName("R", "A")``."""
        qualifier, sep, attribute = text.partition(".")
        if not sep or not qualifier or not attribute:
            raise ValueError(f"not a full name: {text!r}")
        return FullName(qualifier, attribute)


#: A term (Section 2): a constant in C, NULL, or a full name in N².
Term = Union[Constant, Null, FullName]


def is_value(obj: object) -> bool:
    """Whether ``obj`` is a value that may appear in a table."""
    return isinstance(obj, (int, str, Null)) and not isinstance(obj, bool)


def syntactically_equal(a: Value, b: Value) -> bool:
    """Definition 2's syntactic equality on values: same constant or both NULL."""
    return a == b
