"""The SQLite/CSV/SQL-script importer and its value-domain policy."""

import sqlite3

import pytest

from repro.core.values import NULL
from repro.ingest import (
    TYPE_INT,
    TYPE_TEXT,
    ForeignKey,
    export_sql_script,
    export_sqlite,
    import_csv_dir,
    import_scenario,
    import_sqlite,
)


def make_db(path, script):
    conn = sqlite3.connect(str(path))
    conn.executescript(script)
    conn.commit()
    conn.close()
    return str(path)


@pytest.fixture
def shop_db(tmp_path):
    return make_db(
        tmp_path / "shop.db",
        """
        CREATE TABLE vendors (vendor_id INTEGER PRIMARY KEY, vname TEXT);
        INSERT INTO vendors VALUES (1, 'acme'), (2, 'globex');
        CREATE TABLE items (
            item_id INTEGER PRIMARY KEY,
            vendor_id INTEGER REFERENCES vendors(vendor_id),
            label TEXT,
            price REAL
        );
        INSERT INTO items VALUES (10, 1, 'bolt', 0.5), (11, 2, NULL, 1.25);
        """,
    )


def test_import_sqlite_schema_and_rows(shop_db):
    scenario = import_sqlite(shop_db)
    assert set(scenario.schema.table_names) == {"vendors", "items"}
    assert scenario.schema.attributes("vendors") == ("vendor_id", "vname")
    assert len(scenario.database.table("vendors")) == 2
    assert scenario.column_type("vendors", "vendor_id") == TYPE_INT
    assert scenario.column_type("vendors", "vname") == TYPE_TEXT


def test_import_drops_float_column_with_note(shop_db):
    scenario = import_sqlite(shop_db)
    assert "price" not in scenario.schema.attributes("items")
    assert any("items.price" in note for note in scenario.notes)


def test_import_null_becomes_domain_null(shop_db):
    scenario = import_sqlite(shop_db)
    labels = [
        record[scenario.schema.attributes("items").index("label")]
        for record in scenario.database.table("items").bag
    ]
    assert NULL in labels


def test_import_discovers_fk_with_explicit_target(shop_db):
    scenario = import_sqlite(shop_db)
    assert (
        ForeignKey("items", ("vendor_id",), "vendors", ("vendor_id",))
        in scenario.fks
    )


def test_import_resolves_implicit_fk_to_primary_key(tmp_path):
    path = make_db(
        tmp_path / "implicit.db",
        """
        CREATE TABLE parents (pid INTEGER PRIMARY KEY, note TEXT);
        INSERT INTO parents VALUES (1, 'x');
        CREATE TABLE children (cid INTEGER, pid INTEGER REFERENCES parents);
        INSERT INTO children VALUES (7, 1);
        """,
    )
    scenario = import_sqlite(path)
    assert (
        ForeignKey("children", ("pid",), "parents", ("pid",)) in scenario.fks
    )


def test_import_skips_sqlite_internal_tables(tmp_path):
    path = make_db(
        tmp_path / "seq.db",
        """
        CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER);
        INSERT INTO t (v) VALUES (1), (2);
        """,
    )
    scenario = import_sqlite(path)
    assert set(scenario.schema.table_names) == {"t"}


def test_import_coerces_mixed_column_to_text(tmp_path):
    path = make_db(
        tmp_path / "mixed.db",
        """
        CREATE TABLE m (v);
        INSERT INTO m VALUES (1), ('two');
        """,
    )
    scenario = import_sqlite(path)
    assert scenario.column_type("m", "v") == TYPE_TEXT
    values = {record[0] for record in scenario.database.table("m").bag}
    assert values == {"1", "two"}
    assert any("coerced column m.v" in note for note in scenario.notes)


def test_import_sample_rows_caps_tables_deterministically(tmp_path):
    rows = "".join(f"INSERT INTO big VALUES ({i});" for i in range(100))
    path = make_db(tmp_path / "big.db", f"CREATE TABLE big (n INTEGER);{rows}")
    scenario = import_sqlite(path, sample_rows=10)
    table = scenario.database.table("big")
    assert len(table) == 10
    assert {record[0] for record in table.bag} == set(range(10))
    assert any("sampled table big" in note for note in scenario.notes)


def test_import_without_rowid_table(tmp_path):
    path = make_db(
        tmp_path / "worowid.db",
        """
        CREATE TABLE w (k INTEGER PRIMARY KEY, v TEXT) WITHOUT ROWID;
        INSERT INTO w VALUES (1, 'a'), (2, 'b');
        """,
    )
    scenario = import_sqlite(path)
    assert len(scenario.database.table("w")) == 2


def test_import_empty_source_raises(tmp_path):
    path = make_db(tmp_path / "empty.db", "CREATE TABLE e (x REAL);")
    # e's only column is float-typed with no rows -> kept as int (affinity),
    # so build a genuinely empty database instead.
    conn = sqlite3.connect(str(tmp_path / "none.db"))
    conn.close()
    with pytest.raises(ValueError):
        import_scenario(str(tmp_path / "none.db"))


def test_import_sql_script_dispatch(tmp_path):
    script = tmp_path / "fixture.sql"
    script.write_text(
        "CREATE TABLE s (a INTEGER, b TEXT);\n"
        "INSERT INTO s VALUES (1, 'x');\n"
        "INSERT INTO s VALUES (2, NULL);\n"
    )
    scenario = import_scenario(str(script))
    assert scenario.schema.attributes("s") == ("a", "b")
    assert len(scenario.database.table("s")) == 2


def test_import_csv_dir(tmp_path):
    d = tmp_path / "csvdb"
    d.mkdir()
    (d / "users.csv").write_text("uid,uname\n1,ann\n2,\n")
    (d / "posts.csv").write_text("pid,uid\n10,1\n11,2\n")
    (d / "fks.json").write_text(
        '[{"table": "posts", "columns": ["uid"], '
        '"ref_table": "users", "ref_columns": ["uid"]}]'
    )
    scenario = import_csv_dir(d)
    assert set(scenario.schema.table_names) == {"users", "posts"}
    assert scenario.column_type("users", "uid") == TYPE_INT
    assert scenario.column_type("users", "uname") == TYPE_TEXT
    names = [record[1] for record in scenario.database.table("users").bag]
    assert NULL in names  # empty cell
    assert (
        ForeignKey("posts", ("uid",), "users", ("uid",)) in scenario.fks
    )


def test_import_csv_negative_ints(tmp_path):
    d = tmp_path / "neg"
    d.mkdir()
    (d / "t.csv").write_text("n\n-3\n+4\n")
    scenario = import_csv_dir(d)
    assert {record[0] for record in scenario.database.table("t").bag} == {-3, 4}


def test_export_sqlite_reimports_identically(shop_db, tmp_path):
    scenario = import_sqlite(shop_db)
    out = tmp_path / "out.db"
    export_sqlite(scenario, out)
    again = import_sqlite(str(out))
    assert again.table_fingerprints() == scenario.table_fingerprints()
    assert sorted(map(repr, again.fks)) == sorted(map(repr, scenario.fks))


def test_export_sql_script_quotes_embedded_quotes(tmp_path):
    path = make_db(
        tmp_path / "quoted.db",
        "CREATE TABLE q (s TEXT); INSERT INTO q VALUES ('it''s');",
    )
    scenario = import_sqlite(path)
    script = tmp_path / "quoted.sql"
    export_sql_script(scenario, script)
    again = import_scenario(str(script))
    assert again.table_fingerprints() == scenario.table_fingerprints()
