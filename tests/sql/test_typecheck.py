"""Static checks: the "successfully compiled" assumption, incl. Example 2."""

import pytest

from repro.core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    DuplicateAliasError,
    UnboundReferenceError,
    UnknownTableError,
)
from repro.core.schema import Schema
from repro.sql.annotate import annotate
from repro.sql.parser import parse_query
from repro.sql.typecheck import check_query


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A", "B")})


def check(text, schema, star_style="standard"):
    check_query(annotate(text, schema), schema, star_style)


def test_valid_query_passes(schema):
    check("SELECT R.A FROM R WHERE R.A = 1", schema)


def test_unknown_table(schema):
    with pytest.raises(UnknownTableError):
        check("SELECT X.A FROM X", schema)


def test_unbound_reference(schema):
    q = annotate("SELECT R.A FROM R", schema)
    from repro.core.values import FullName
    from repro.sql.ast import Predicate, Select

    bad = Select(q.items, q.from_items, Predicate("=", (FullName("Z", "A"), 1)))
    with pytest.raises(UnboundReferenceError):
        check_query(bad, schema)


def test_duplicate_alias(schema):
    q = parse_query("SELECT X.A FROM R AS X, S AS X")
    with pytest.raises(DuplicateAliasError):
        check_query(q, schema)


def test_set_op_arity_mismatch(schema):
    q = annotate("SELECT R.A FROM R UNION SELECT S.A, S.B FROM S", schema)
    with pytest.raises(ArityMismatchError):
        check_query(q, schema)


def test_in_arity_mismatch(schema):
    q = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A, S.B FROM S)", schema)
    with pytest.raises(ArityMismatchError):
        check_query(q, schema)


def test_example2_star_over_duplicates_fails_standard(schema):
    """Example 2, first query: rejected by the standard/Oracle behaviour."""
    q = annotate("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", schema)
    with pytest.raises(AmbiguousReferenceError):
        check_query(q, schema, "standard")


def test_example2_star_over_duplicates_passes_compositional(schema):
    """PostgreSQL's compositional semantics accepts the same query."""
    q = annotate("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", schema)
    check_query(q, schema, "compositional")


def test_example2_under_exists_passes_standard(schema):
    """Example 2, second query: under EXISTS, * is a constant — no ambiguity."""
    q = annotate(
        "SELECT * FROM R WHERE EXISTS "
        "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T)",
        schema,
    )
    check_query(q, schema, "standard")


def test_explicit_reference_to_duplicate_is_ambiguous_both_styles(schema):
    q = annotate("SELECT T.A AS X FROM (SELECT R.A, R.A FROM R) AS T", schema)
    for style in ("standard", "compositional"):
        with pytest.raises(AmbiguousReferenceError):
            check_query(q, schema, style)


def test_star_under_set_op_inside_exists_still_expands(schema):
    """Figure 7 evaluates set-operation operands with x = 0: a * inside a
    UNION under EXISTS is expanded, so duplicate columns are an error."""
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS ("
        "SELECT * FROM (SELECT R.A, R.A FROM R) AS T "
        "UNION ALL SELECT S.A, S.B FROM S)",
        schema,
    )
    with pytest.raises(AmbiguousReferenceError):
        check_query(q, schema, "standard")


def test_correlated_reference_through_scopes(schema):
    check(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.B FROM S WHERE S.A = R.A)",
        schema,
    )


def test_shadowed_reference_resolves_to_inner(schema):
    # S.A in the subquery must resolve against the inner S, not an outer one.
    check(
        "SELECT X.A FROM S AS X WHERE EXISTS (SELECT S.B FROM S WHERE S.A = X.A)",
        schema,
    )


def test_unannotated_query_rejected(schema):
    q = parse_query("SELECT A FROM R")
    with pytest.raises(UnboundReferenceError):
        check_query(q, schema)


def test_column_alias_arity(schema):
    """The arity of a T AS N(A1, …, An) rename list is checked as soon as
    labels are computed — already during annotation."""
    with pytest.raises(ArityMismatchError):
        annotate("SELECT T.X AS X FROM (SELECT R.A FROM R) AS T(X, Y)", schema)
    q = parse_query("SELECT T.X AS X FROM (SELECT R.A AS A FROM R AS R) AS T(X, Y)")
    with pytest.raises(ArityMismatchError):
        check_query(q, schema)
