"""Derived operators: ≐, syntactic join, semijoin/antijoin, π^α_β."""

import pytest

from repro.algebra.ast import Attr, Relation, is_pure
from repro.algebra.ops import (
    NameSupply,
    antijoin,
    generalized_projection,
    natural_join_syntactic,
    rename_one,
    semijoin,
    syn_eq,
)
from repro.algebra.semantics import EMPTY_RA_ENV, RAEnvironment, RASemantics
from repro.algebra.typecheck import signature
from repro.core import NULL, Database, Schema
from repro.core.errors import IllFormedExpressionError
from repro.core.truth import FALSE, TRUE


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("B", "C"), "P": ("A",), "Q": ("A",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {
            "R": [(1, 2), (1, 2), (NULL, 2), (3, NULL)],
            "S": [(2, 5), (NULL, 6)],
            "P": [(1,), (NULL,), (1,)],
            "Q": [(NULL,), (2,)],
        },
    )


@pytest.fixture
def ra(schema):
    return RASemantics(schema)


class TestSynEq:
    """Definition 2: t1 ≐ t2 is two-valued and treats NULL as a value."""

    def check(self, ra, db, a, b):
        return ra.eval_condition(syn_eq(a, b), db, EMPTY_RA_ENV)

    def test_equal_constants(self, ra, db):
        assert self.check(ra, db, 1, 1) is TRUE

    def test_unequal_constants(self, ra, db):
        assert self.check(ra, db, 1, 2) is FALSE

    def test_null_eq_null_true(self, ra, db):
        assert self.check(ra, db, NULL, NULL) is TRUE

    def test_null_vs_constant_false(self, ra, db):
        assert self.check(ra, db, NULL, 1) is FALSE
        assert self.check(ra, db, 1, NULL) is FALSE

    def test_with_attributes(self, ra, db):
        env = RAEnvironment({"X": NULL, "Y": NULL, "Z": 3})
        cond = syn_eq(Attr("X"), Attr("Y"))
        assert ra.eval_condition(cond, db, env) is TRUE
        cond2 = syn_eq(Attr("X"), Attr("Z"))
        assert ra.eval_condition(cond2, db, env) is FALSE


def test_name_supply_freshness():
    supply = NameSupply(["x", "x_1"])
    assert supply.fresh("x") == "x_2"
    assert supply.fresh("y") == "y"
    assert supply.fresh("y") != "y"


def test_rename_one(ra, schema, db):
    expr = rename_one(Relation("R"), schema, "A", "Z")
    assert signature(expr, schema) == ("Z", "B")
    assert ra.evaluate(expr, db).multiplicity((1, 2)) == 2


def test_rename_one_noop(schema):
    assert rename_one(Relation("R"), schema, "A", "A") == Relation("R")


class TestSyntacticJoin:
    def test_signature(self, ra, schema, db):
        joined = natural_join_syntactic(Relation("R"), Relation("S"), schema)
        assert signature(joined, schema) == ("A", "B", "C")

    def test_matches_on_common_column(self, ra, schema, db):
        joined = natural_join_syntactic(Relation("R"), Relation("S"), schema)
        t = ra.evaluate(joined, db)
        # B=2 rows of R join the B=2 row of S; the NULL B joins NULL B of S.
        assert t.multiplicity((1, 2, 5)) == 2
        assert t.multiplicity((NULL, 2, 5)) == 1
        assert t.multiplicity((3, NULL, 6)) == 1
        assert len(t) == 4

    def test_null_joins_null_syntactically(self, ra, schema, db):
        """The ⋈ˢ comparison is ≐, so NULL matches NULL."""
        joined = natural_join_syntactic(Relation("R"), Relation("S"), schema)
        t = ra.evaluate(joined, db)
        assert t.multiplicity((3, NULL, 6)) == 1

    def test_no_common_columns_is_product(self, ra, schema, db):
        joined = natural_join_syntactic(Relation("P"), Relation("S"), schema)
        t = ra.evaluate(joined, db)
        assert len(t) == 6

    def test_pure(self, schema):
        assert is_pure(natural_join_syntactic(Relation("R"), Relation("S"), schema))


class TestSemijoinAntijoin:
    def test_semijoin_preserves_multiplicity(self, ra, schema, db):
        expr = semijoin(Relation("P"), Relation("Q"), schema)
        t = ra.evaluate(expr, db)
        # P rows with A ∈ Q (syntactically): NULL matches, 1 does not.
        assert t.multiplicity((NULL,)) == 1
        assert t.multiplicity((1,)) == 0

    def test_antijoin_is_complement(self, ra, schema, db):
        semi = ra.evaluate(semijoin(Relation("P"), Relation("Q"), schema), db)
        anti = ra.evaluate(antijoin(Relation("P"), Relation("Q"), schema), db)
        full = ra.evaluate(Relation("P"), db)
        assert semi.bag.union(anti.bag) == full.bag

    def test_semijoin_empty_right(self, ra, schema):
        db = Database(schema, {"P": [(1,)], "Q": []})
        assert ra.evaluate(semijoin(Relation("P"), Relation("Q"), schema), db).is_empty()
        anti = ra.evaluate(antijoin(Relation("P"), Relation("Q"), schema), db)
        assert anti.multiplicity((1,)) == 1

    def test_uncorrelated_style_no_common_columns(self, ra, schema, db):
        """With disjoint signatures the semijoin acts as a nonemptiness gate."""
        expr = semijoin(Relation("P"), Relation("S"), schema)
        t = ra.evaluate(expr, db)
        assert t.bag == ra.evaluate(Relation("P"), db).bag


class TestGeneralizedProjection:
    def test_simple_rename(self, ra, schema, db):
        expr = generalized_projection(Relation("R"), ("A",), ("X",), schema)
        t = ra.evaluate(expr, db)
        assert t.columns == ("X",)
        assert t.multiplicity((1,)) == 2

    def test_identity_projection(self, ra, schema, db):
        expr = generalized_projection(Relation("R"), ("B",), ("B",), schema)
        t = ra.evaluate(expr, db)
        assert t.columns == ("B",)

    def test_swap_columns(self, ra, schema, db):
        expr = generalized_projection(Relation("R"), ("B", "A"), ("A", "B"), schema)
        t = ra.evaluate(expr, db)
        assert t.columns == ("A", "B")
        assert t.multiplicity((2, 1)) == 2

    def test_duplicated_column(self, ra, schema, db):
        """π^{(A,A)}_{(X,Y)}: duplication via syntactic self-joins, with
        multiplicities preserved — including NULL values."""
        expr = generalized_projection(Relation("R"), ("A", "A"), ("X", "Y"), schema)
        assert is_pure(expr)
        t = ra.evaluate(expr, db)
        assert t.columns == ("X", "Y")
        assert t.multiplicity((1, 1)) == 2
        assert t.multiplicity((NULL, NULL)) == 1
        assert t.multiplicity((3, 3)) == 1
        assert len(t) == 4

    def test_triple_duplication(self, ra, schema, db):
        expr = generalized_projection(
            Relation("P"), ("A", "A", "A"), ("X", "Y", "Z"), schema
        )
        t = ra.evaluate(expr, db)
        assert t.multiplicity((1, 1, 1)) == 2
        assert t.multiplicity((NULL, NULL, NULL)) == 1

    def test_mixed_duplicate_and_plain(self, ra, schema, db):
        expr = generalized_projection(
            Relation("R"), ("A", "B", "A"), ("X", "Y", "Z"), schema
        )
        t = ra.evaluate(expr, db)
        assert t.multiplicity((1, 2, 1)) == 2
        assert t.multiplicity((3, NULL, 3)) == 1

    def test_beta_repetition_rejected(self, schema):
        with pytest.raises(IllFormedExpressionError):
            generalized_projection(Relation("R"), ("A", "B"), ("X", "X"), schema)

    def test_length_mismatch_rejected(self, schema):
        with pytest.raises(IllFormedExpressionError):
            generalized_projection(Relation("R"), ("A",), ("X", "Y"), schema)

    def test_missing_column_rejected(self, schema):
        with pytest.raises(IllFormedExpressionError):
            generalized_projection(Relation("R"), ("Z",), ("X",), schema)
