"""Schemas and database instances (Section 2).

A *schema* is a set of base-table names, each associated with a non-empty
tuple ``ℓ(R)`` of distinct attribute names.  A *database* maps each base
table name to a table of the right arity.  Both are immutable.

The module also provides the fixed validation schema of Section 4
(:func:`validation_schema`): base tables R1..R8 where Ri has i+1 integer
attributes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from .bag import Bag
from .errors import SchemaError, UnknownTableError
from .table import Table
from .values import Name, Record

__all__ = ["Schema", "Database", "validation_schema"]


class Schema:
    """A set of base table names with their attribute tuples ``ℓ(R)``."""

    __slots__ = ("_tables",)

    def __init__(self, tables: Mapping[Name, Sequence[Name]]):
        clean: Dict[Name, Tuple[Name, ...]] = {}
        for name, attributes in tables.items():
            attrs = tuple(attributes)
            if not attrs:
                raise SchemaError(f"base table {name} must have at least one attribute")
            if len(set(attrs)) != len(attrs):
                raise SchemaError(
                    f"base table {name} has repeated attribute names: {attrs}"
                )
            clean[name] = attrs
        self._tables = clean

    @property
    def table_names(self) -> Tuple[Name, ...]:
        return tuple(self._tables)

    def __contains__(self, name: Name) -> bool:
        return name in self._tables

    def attributes(self, name: Name) -> Tuple[Name, ...]:
        """The paper's ℓ(R) for a base table R."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"unknown base table: {name}") from None

    def arity(self, name: Name) -> int:
        return len(self.attributes(name))

    def items(self):
        return self._tables.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._tables == other._tables

    def __repr__(self) -> str:
        decls = ", ".join(
            f"{name}({', '.join(attrs)})" for name, attrs in self._tables.items()
        )
        return f"Schema({decls})"


class Database:
    """An instance: each base table name mapped to a table of matching arity."""

    __slots__ = ("_schema", "_tables")

    def __init__(self, schema: Schema, tables: Mapping[Name, Iterable[Record]] = {}):
        self._schema = schema
        self._tables: Dict[Name, Table] = {}
        for name in schema.table_names:
            attrs = schema.attributes(name)
            rows = tables.get(name, ())
            bag = rows if isinstance(rows, Bag) else Bag(tuple(r) for r in rows)
            if bag.arity is not None and bag.arity != len(attrs):
                raise SchemaError(
                    f"table {name} declared arity {len(attrs)} but rows have "
                    f"arity {bag.arity}"
                )
            self._tables[name] = Table(attrs, bag)
        extra = set(tables) - set(schema.table_names)
        if extra:
            raise SchemaError(f"instance provides undeclared tables: {sorted(extra)}")

    @property
    def schema(self) -> Schema:
        return self._schema

    def table(self, name: Name) -> Table:
        """The interpretation R^D of a base table (with its schema labels)."""
        if name not in self._tables:
            raise UnknownTableError(f"unknown base table: {name}")
        return self._tables[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._schema == other._schema and self._tables == other._tables

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}: {len(t)}" for name, t in self._tables.items())
        return f"Database({sizes})"


def validation_schema(num_tables: int = 8) -> Schema:
    """The fixed schema of Section 4: R1..R8, Ri with i+1 int attributes.

    Attribute names are A1..A(i+1); all attributes are conceptually of type
    int (the paper notes the data type is immaterial to the semantics).
    """
    if num_tables < 1:
        raise ValueError("need at least one base table")
    return Schema(
        {
            f"R{i}": tuple(f"A{j}" for j in range(1, i + 2))
            for i in range(1, num_tables + 1)
        }
    )
