"""Annotation: surface SQL → the fully-annotated form of Section 2.

The paper assumes w.l.o.g. that queries are given in a form where

* every base table or subquery in FROM has an explicit name (``R AS R``),
* every attribute reference is fully qualified with the name of the table it
  comes from, and
* the output names of the SELECT list are explicitly listed.

This pass performs exactly that normalization — it is the counterpart of
what an RDBMS's compiler does before execution.  Unqualified column
references are resolved through the scope chain (innermost FROM first, then
outward), raising :class:`~repro.core.errors.AmbiguousReferenceError` when a
name matches more than one column of the nearest binding scope and
:class:`~repro.core.errors.UnboundReferenceError` when it matches none.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import (
    AmbiguousReferenceError,
    DuplicateAliasError,
    UnboundReferenceError,
)
from ..core.schema import Schema
from ..core.values import FullName, Name, Term
from .ast import (
    And,
    BareColumn,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SelectItem,
    SetOp,
    TrueCond,
)
from .labels import from_item_labels

__all__ = ["annotate_query", "annotate"]

#: One scope: the (alias, column-label) pairs contributed by a FROM clause.
_Scope = List[Tuple[Name, Tuple[Name, ...]]]


def annotate(text_or_query, schema: Schema) -> Query:
    """Annotate a query, parsing it first if given as SQL text."""
    from .parser import parse_query

    query = parse_query(text_or_query) if isinstance(text_or_query, str) else text_or_query
    return annotate_query(query, schema)


def annotate_query(query: Query, schema: Schema) -> Query:
    """Produce the fully-annotated version of a surface query."""
    return _annotate_query(query, schema, [])


def _annotate_query(query: Query, schema: Schema, outer: List[_Scope]) -> Query:
    if isinstance(query, SetOp):
        return SetOp(
            query.op,
            _annotate_query(query.left, schema, outer),
            _annotate_query(query.right, schema, outer),
            all=query.all,
        )
    if not isinstance(query, Select):
        raise TypeError(f"not a query: {query!r}")

    # FROM items first: subqueries in FROM see the *outer* scopes only
    # (their ⟦·⟧ is taken under the enclosing η, not under sibling bindings).
    new_from: List[FromItem] = []
    local_scope: _Scope = []
    seen_aliases: set[Name] = set()
    for item in query.from_items:
        if item.is_base_table:
            table = item.table
        else:
            table = _annotate_query(item.table, schema, outer)
        alias = item.alias or (item.table if item.is_base_table else "")
        if not alias:
            raise UnboundReferenceError("a subquery in FROM requires an alias")
        if alias in seen_aliases:
            raise DuplicateAliasError(
                f"alias {alias} used twice in the same FROM clause"
            )
        seen_aliases.add(alias)
        new_item = FromItem(table, alias, item.column_aliases)
        new_from.append(new_item)
        local_scope.append((alias, from_item_labels(new_item, schema)))

    scopes = outer + [local_scope]

    where = _annotate_condition(query.where, schema, scopes)

    if query.is_star:
        items: object = query.items
    else:
        new_items: List[SelectItem] = []
        for index, item in enumerate(query.items):
            term = _annotate_term(item.term, scopes)
            alias = item.alias or _default_alias(term, index)
            new_items.append(SelectItem(term, alias))
        items = tuple(new_items)

    return Select(items, tuple(new_from), where, distinct=query.distinct)


def _default_alias(term: Term, index: int) -> Name:
    if isinstance(term, FullName):
        return term.attribute
    return f"COL{index + 1}"


def _annotate_term(term: Term, scopes: List[_Scope]) -> Term:
    if isinstance(term, BareColumn):
        return _resolve_bare(term.name, scopes)
    return term


def _resolve_bare(name: Name, scopes: List[_Scope]) -> FullName:
    """Resolve an unqualified column against the scope chain, innermost first."""
    for scope in reversed(scopes):
        matches = [
            FullName(alias, label)
            for alias, labels in scope
            for label in labels
            if label == name
        ]
        if len(matches) > 1:
            raise AmbiguousReferenceError(
                f"column reference {name} is ambiguous: it matches "
                f"{', '.join(str(m) for m in matches)}"
            )
        if matches:
            return matches[0]
    raise UnboundReferenceError(f"column reference {name} does not match any table")


def _annotate_condition(
    condition: Condition, schema: Schema, scopes: List[_Scope]
) -> Condition:
    if isinstance(condition, (TrueCond, FalseCond)):
        return condition
    if isinstance(condition, Predicate):
        return Predicate(
            condition.name,
            tuple(_annotate_term(arg, scopes) for arg in condition.args),
        )
    if isinstance(condition, IsNull):
        return IsNull(_annotate_term(condition.term, scopes), condition.negated)
    if isinstance(condition, InQuery):
        return InQuery(
            tuple(_annotate_term(t, scopes) for t in condition.terms),
            _annotate_subquery(condition.query, schema, scopes),
            condition.negated,
        )
    if isinstance(condition, Exists):
        return Exists(_annotate_subquery(condition.query, schema, scopes))
    if isinstance(condition, And):
        return And(
            _annotate_condition(condition.left, schema, scopes),
            _annotate_condition(condition.right, schema, scopes),
        )
    if isinstance(condition, Or):
        return Or(
            _annotate_condition(condition.left, schema, scopes),
            _annotate_condition(condition.right, schema, scopes),
        )
    if isinstance(condition, Not):
        return Not(_annotate_condition(condition.operand, schema, scopes))
    raise TypeError(f"not a condition: {condition!r}")


def _annotate_subquery(query: Query, schema: Schema, scopes: List[_Scope]) -> Query:
    return _annotate_query(query, schema, scopes)
