"""The "library" demo scenario: an FK-rich schema at any scale.

A deliberately realistic shape — two independent dimension hierarchies
(authors/publishers feeding books, branches feeding stock) and two fact
tables (loans, stock) with composite foreign-key fan-in — exercised by the
bench's ``ingest`` stage at 10⁵ rows and committed, tiny, as the CI fixture
``tests/fixtures/library.sql``.

Everything here is deterministic in ``seed``: the synthesizer derives each
table's RNG from ``f"{seed}:{table}"``.
"""

from __future__ import annotations

from typing import Dict

from ..core.schema import Schema
from .scenario import ForeignKey, Scenario, TYPE_INT, TYPE_TEXT
from .synth import SynthConfig, synthesize

__all__ = ["library_schema", "library_foreign_keys", "library_scenario"]

#: Fraction of the requested total rows allotted to each table.
_SHARES = {
    "authors": 0.05,
    "publishers": 0.02,
    "books": 0.20,
    "members": 0.12,
    "branches": 0.01,
    "loans": 0.40,
    "stock": 0.20,
}


def library_schema() -> Schema:
    return Schema(
        {
            "authors": ("author_id", "name", "country"),
            "publishers": ("publisher_id", "pub_name", "city"),
            "books": ("book_id", "title", "author_id", "publisher_id", "year"),
            "members": ("member_id", "member_name", "joined"),
            "branches": ("branch_id", "branch_city"),
            "loans": ("loan_id", "book_id", "member_id", "due"),
            "stock": ("book_id", "branch_id", "copies"),
        }
    )


def library_foreign_keys() -> tuple:
    return (
        ForeignKey("books", ("author_id",), "authors", ("author_id",)),
        ForeignKey("books", ("publisher_id",), "publishers", ("publisher_id",)),
        ForeignKey("loans", ("book_id",), "books", ("book_id",)),
        ForeignKey("loans", ("member_id",), "members", ("member_id",)),
        ForeignKey("stock", ("book_id",), "books", ("book_id",)),
        ForeignKey("stock", ("branch_id",), "branches", ("branch_id",)),
    )


_TYPES: Dict[str, Dict[str, str]] = {
    "authors": {"author_id": TYPE_INT, "name": TYPE_TEXT, "country": TYPE_TEXT},
    "publishers": {
        "publisher_id": TYPE_INT,
        "pub_name": TYPE_TEXT,
        "city": TYPE_TEXT,
    },
    "books": {
        "book_id": TYPE_INT,
        "title": TYPE_TEXT,
        "author_id": TYPE_INT,
        "publisher_id": TYPE_INT,
        "year": TYPE_INT,
    },
    "members": {
        "member_id": TYPE_INT,
        "member_name": TYPE_TEXT,
        "joined": TYPE_INT,
    },
    "branches": {"branch_id": TYPE_INT, "branch_city": TYPE_TEXT},
    "loans": {
        "loan_id": TYPE_INT,
        "book_id": TYPE_INT,
        "member_id": TYPE_INT,
        "due": TYPE_INT,
    },
    "stock": {"book_id": TYPE_INT, "branch_id": TYPE_INT, "copies": TYPE_INT},
}


def library_scenario(
    total_rows: int = 1000,
    seed: int = 0,
    skew: float = 1.1,
    null_rate: float = 0.08,
) -> Scenario:
    """The library scenario scaled to roughly ``total_rows`` rows overall."""
    table_rows = {
        name: max(2, int(total_rows * share)) for name, share in _SHARES.items()
    }
    config = SynthConfig(
        rows=max(2, total_rows // len(_SHARES)),
        table_rows=table_rows,
        skew=skew,
        null_rate=null_rate,
        domain=max(16, total_rows // 16),
    )
    scenario = synthesize(
        library_schema(),
        fks=library_foreign_keys(),
        config=config,
        seed=seed,
        types=_TYPES,
    )
    return Scenario(
        schema=scenario.schema,
        database=scenario.database,
        fks=scenario.fks,
        types=scenario.types,
        source=f"library(total_rows={total_rows}, seed={seed})",
        notes=scenario.notes,
    )
