"""Bag semantics of relational algebra and SQL-RA (Figure 8 + Section 5).

``⟦E⟧_{D,η}`` evaluates an expression on a database D under an environment η
(a partial map from *names* to values — unlike the SQL side, where
environments are keyed by full names).  For a plain RA query, η is empty and
never consulted; for SQL-RA, selections override η with their row bindings
(``η ; η^ā_{ℓ(E)}``), and the extended conditions ``t̄ ∈ E`` / ``empty(E)``
evaluate their sub-expression under the current environment — exactly the
paper's extension for mimicking correlated subqueries.

Equality inside ``t̄ ∈ E`` is the three-valued ⟦t1 = t2⟧ of Figure 8;
``null``/``const`` are two-valued; predicates are the shared registry of
:mod:`repro.semantics.predicates`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..core.bag import Bag
from ..core.errors import UnboundReferenceError
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.truth import FALSE, TRUE, UNKNOWN, Truth, conj_all
from ..core.values import NULL, Name, Null, Record, Value
from ..semantics.logic import THREE_VALUED, Logic
from ..semantics.predicates import PredicateRegistry, default_registry
from .ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    RATerm,
    Relation,
    Renaming,
    RFalse,
    RNot,
    ROr,
    RPredicate,
    RTrue,
    Selection,
    UnionOp,
)
from .typecheck import signature

__all__ = ["RAEnvironment", "EMPTY_RA_ENV", "RASemantics"]


class RAEnvironment:
    """An immutable partial map from names to values (η of Figure 8)."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Name, Value] = {}):
        self._bindings: Dict[Name, Value] = dict(bindings)

    @classmethod
    def for_record(cls, labels: Tuple[Name, ...], record: Record) -> "RAEnvironment":
        """η^ā_β: well-defined because RA signatures are repetition-free."""
        if len(labels) != len(record):
            raise ValueError("labels and record of different lengths")
        return cls(dict(zip(labels, record)))

    def override_with(
        self, labels: Tuple[Name, ...], record: Record
    ) -> "RAEnvironment":
        """η ; η^ā_β — the row bindings win."""
        merged = dict(self._bindings)
        merged.update(zip(labels, record))
        return RAEnvironment(merged)

    def lookup(self, name: Name) -> Value:
        try:
            return self._bindings[name]
        except KeyError:
            raise UnboundReferenceError(
                f"RA name {name} is not bound by the environment"
            ) from None

    def defined_on(self, name: Name) -> bool:
        return name in self._bindings

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RAEnvironment):
            return NotImplemented
        return self._bindings == other._bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._bindings.items())
        return f"RAEnvironment({{{inner}}})"


EMPTY_RA_ENV = RAEnvironment()


class RASemantics:
    """The semantic function ⟦·⟧ for (SQL-)RA expressions on a schema."""

    def __init__(
        self,
        schema: Schema,
        predicates: Optional[PredicateRegistry] = None,
        logic: Logic = THREE_VALUED,
    ):
        self.schema = schema
        self.predicates = predicates if predicates is not None else default_registry()
        self.logic = logic

    # -- terms ---------------------------------------------------------------

    def eval_term(self, term: RATerm, env: RAEnvironment) -> Value:
        if isinstance(term, Attr):
            return env.lookup(term.name)
        if isinstance(term, Null):
            return NULL
        return term

    # -- expressions -----------------------------------------------------------

    def evaluate(
        self, expr: RAExpr, db: Database, env: RAEnvironment = EMPTY_RA_ENV
    ) -> Table:
        """⟦E⟧_{D,η} with the signature ℓ(E) as column labels."""
        labels = signature(expr, self.schema)
        return Table(labels, self._eval(expr, db, env))

    def _eval(self, expr: RAExpr, db: Database, env: RAEnvironment) -> Bag:
        if isinstance(expr, Relation):
            return db.table(expr.name).bag
        if isinstance(expr, Projection):
            source_labels = signature(expr.source, self.schema)
            bag = self._eval(expr.source, db, env)
            positions = [source_labels.index(a) for a in expr.attributes]
            counts: Dict[Record, int] = {}
            for record, count in bag.counts().items():
                out = tuple(record[i] for i in positions)
                counts[out] = counts.get(out, 0) + count
            return Bag.from_counts(counts)
        if isinstance(expr, Selection):
            source_labels = signature(expr.source, self.schema)
            bag = self._eval(expr.source, db, env)
            counts = {}
            for record, count in bag.counts().items():
                row_env = env.override_with(source_labels, record)
                if self.eval_condition(expr.condition, db, row_env).is_true:
                    counts[record] = count
            return Bag.from_counts(counts)
        if isinstance(expr, Product):
            return self._eval(expr.left, db, env).product(
                self._eval(expr.right, db, env)
            )
        if isinstance(expr, UnionOp):
            return self._eval(expr.left, db, env).union(
                self._eval(expr.right, db, env)
            )
        if isinstance(expr, IntersectionOp):
            return self._eval(expr.left, db, env).intersection(
                self._eval(expr.right, db, env)
            )
        if isinstance(expr, DifferenceOp):
            return self._eval(expr.left, db, env).difference(
                self._eval(expr.right, db, env)
            )
        if isinstance(expr, Renaming):
            return self._eval(expr.source, db, env)
        if isinstance(expr, Dedup):
            return self._eval(expr.source, db, env).distinct_bag()
        raise TypeError(f"not an RA expression: {expr!r}")

    # -- conditions ---------------------------------------------------------------

    def eval_condition(
        self, condition: RACondition, db: Database, env: RAEnvironment
    ) -> Truth:
        if isinstance(condition, RTrue):
            return TRUE
        if isinstance(condition, RFalse):
            return FALSE
        if isinstance(condition, RPredicate):
            values = tuple(self.eval_term(t, env) for t in condition.args)
            return self.logic.predicate(self.predicates, condition.name, values)
        if isinstance(condition, NullTest):
            return Truth.from_bool(self.eval_term(condition.term, env) is NULL)
        if isinstance(condition, ConstTest):
            return Truth.from_bool(self.eval_term(condition.term, env) is not NULL)
        if isinstance(condition, RAnd):
            left = self.eval_condition(condition.left, db, env)
            if left is FALSE:
                return FALSE
            return left & self.eval_condition(condition.right, db, env)
        if isinstance(condition, ROr):
            left = self.eval_condition(condition.left, db, env)
            if left is TRUE:
                return TRUE
            return left | self.eval_condition(condition.right, db, env)
        if isinstance(condition, RNot):
            return ~self.eval_condition(condition.operand, db, env)
        if isinstance(condition, InExpr):
            return self._eval_in(condition, db, env)
        if isinstance(condition, Empty):
            bag = self._eval(condition.source, db, env)
            return Truth.from_bool(bag.is_empty())
        raise TypeError(f"not an RA condition: {condition!r}")

    def _eval_in(self, condition: InExpr, db: Database, env: RAEnvironment) -> Truth:
        """⟦t̄ ∈ E⟧: t if some row matches, f if all rows mismatch, u otherwise."""
        bag = self._eval(condition.source, db, env)
        values = tuple(self.eval_term(t, env) for t in condition.terms)
        if bag.arity is not None and bag.arity != len(values):
            raise ValueError(
                f"∈ compares {len(values)} term(s) against arity {bag.arity}"
            )
        result = FALSE
        for row in bag.distinct():
            comparison = conj_all(self.logic.equal(a, b) for a, b in zip(values, row))
            result = result | comparison
            if result is TRUE:
                return TRUE
        return result
