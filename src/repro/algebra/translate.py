"""Theorem 1's translations between basic SQL and (SQL-)relational algebra.

This module implements both directions of the equivalence proof:

* :func:`to_sqlra` — the Figure 9 translation from *data manipulation*
  queries (Definition 1) to SQL-RA, under an injective renaming
  χ : N² → N − (N_Q ∪ N_base) that simulates full names with plain names;
* :func:`ra_to_sql` — the "completely standard" converse translation from
  plain RA to basic SQL;
* :func:`sql_to_ra` — the full pipeline SQL → SQL-RA → pure RA, composing
  the Figure 9 translation with the Proposition 2 desugaring of
  :mod:`repro.algebra.desugar`.

Definition 1 (data manipulation queries): the query and every subquery is of
the form ``SELECT [DISTINCT] α : β′ FROM τ : β WHERE θ`` where the names in
β′ do not repeat and every full name N1.N2 in α has N1 among the aliases β of
the *local* FROM clause.  In particular ``SELECT *`` is excluded, and so are
constants in the SELECT list (relational algebra cannot invent values).
:func:`check_data_manipulation` enforces this, raising
:class:`~repro.core.errors.NotDataManipulationError`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.errors import NotDataManipulationError
from ..core.schema import Schema
from ..core.values import FullName, Name, Null, Term
from ..sql.ast import (
    And,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SelectItem,
    SetOp,
    TrueCond,
)
from ..sql.labels import from_item_labels, query_labels
from .ast import (
    Attr,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    RATerm,
    Relation,
    Renaming,
    RNot,
    ROr,
    RPredicate,
    NullTest,
    R_FALSE,
    R_TRUE,
    Selection,
    UnionOp,
)
from .ops import NameSupply, generalized_projection
from .typecheck import signature

__all__ = [
    "check_data_manipulation",
    "is_data_manipulation",
    "ChiRenaming",
    "to_sqlra",
    "sql_to_ra",
    "ra_to_sql",
]


# ---------------------------------------------------------------------------
# Definition 1
# ---------------------------------------------------------------------------


def check_data_manipulation(query: Query, schema: Schema) -> None:
    """Raise :class:`NotDataManipulationError` unless Definition 1 holds."""
    if isinstance(query, SetOp):
        check_data_manipulation(query.left, schema)
        check_data_manipulation(query.right, schema)
        return
    if not isinstance(query, Select):
        raise TypeError(f"not a query: {query!r}")
    if query.is_star:
        raise NotDataManipulationError(
            "SELECT * is not allowed in data manipulation queries"
        )
    aliases = tuple(item.alias for item in query.items)
    if len(set(aliases)) != len(aliases):
        raise NotDataManipulationError(
            f"output names repeat: {aliases} (Definition 1 requires β′ to be "
            f"repetition-free)"
        )
    local_aliases = {item.alias for item in query.from_items}
    for item in query.items:
        term = item.term
        if not isinstance(term, FullName):
            raise NotDataManipulationError(
                f"SELECT list contains {term!r}: relational algebra cannot "
                f"invent values, so only attributes of the local FROM clause "
                f"may be selected"
            )
        if term.qualifier not in local_aliases:
            raise NotDataManipulationError(
                f"SELECT list references {term}, whose table is not in the "
                f"local FROM clause"
            )
    for item in query.from_items:
        if not item.is_base_table:
            check_data_manipulation(item.table, schema)
    _check_condition(query.where, schema)


def _check_condition(condition: Condition, schema: Schema) -> None:
    if isinstance(condition, InQuery):
        check_data_manipulation(condition.query, schema)
    elif isinstance(condition, Exists):
        check_data_manipulation(condition.query, schema)
    elif isinstance(condition, (And, Or)):
        _check_condition(condition.left, schema)
        _check_condition(condition.right, schema)
    elif isinstance(condition, Not):
        _check_condition(condition.operand, schema)


def is_data_manipulation(query: Query, schema: Schema) -> bool:
    try:
        check_data_manipulation(query, schema)
    except NotDataManipulationError:
        return False
    return True


# ---------------------------------------------------------------------------
# χ: an injective map N² → N − (N_Q ∪ N_base)
# ---------------------------------------------------------------------------


class ChiRenaming:
    """The renaming χ of Section 5, built fresh for each translated query.

    χ maps every full name to a plain name, injectively, avoiding the names
    N_Q occurring in the rename lists of the query's SELECT clauses and the
    column names N_base of the schema's base tables.
    """

    def __init__(self, query: Query, schema: Schema):
        forbidden = set(_query_output_names(query))
        for table in schema.table_names:
            forbidden.update(schema.attributes(table))
        self._supply = NameSupply(forbidden)
        self._map: Dict[FullName, Name] = {}

    def __call__(self, full_name: FullName) -> Name:
        if full_name not in self._map:
            hint = f"{full_name.qualifier}_{full_name.attribute}"
            self._map[full_name] = self._supply.fresh(hint)
        return self._map[full_name]

    def term(self, term: Term) -> RATerm:
        """χ on terms: full names are mapped, constants and NULL unchanged."""
        if isinstance(term, FullName):
            return Attr(self(term))
        return term

    @property
    def supply(self) -> NameSupply:
        """The underlying fresh-name supply (shared with π^α_β constructions)."""
        return self._supply

    def mapping(self) -> Dict[FullName, Name]:
        return dict(self._map)


def _query_output_names(query: Query) -> List[Name]:
    names: List[Name] = []
    stack: List[object] = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, SetOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, Select):
            if not node.is_star:
                names.extend(item.alias for item in node.items)
            for item in node.from_items:
                if item.column_aliases:
                    names.extend(item.column_aliases)
                if not item.is_base_table:
                    stack.append(item.table)
            stack.append(node.where)
        elif isinstance(node, (InQuery, Exists)):
            stack.append(node.query)
        elif isinstance(node, (And, Or)):
            stack.extend((node.left, node.right))
        elif isinstance(node, Not):
            stack.append(node.operand)
    return names


# ---------------------------------------------------------------------------
# Figure 9: SQL → SQL-RA
# ---------------------------------------------------------------------------


def to_sqlra(
    query: Query, schema: Schema, chi: ChiRenaming | None = None
) -> RAExpr:
    """Translate a data manipulation query to SQL-RA (Proposition 1)."""
    check_data_manipulation(query, schema)
    if chi is None:
        chi = ChiRenaming(query, schema)
    return _translate_query(query, schema, chi)


def _translate_query(query: Query, schema: Schema, chi: ChiRenaming) -> RAExpr:
    if isinstance(query, SetOp):
        left = _translate_query(query.left, schema, chi)
        right = _translate_query(query.right, schema, chi)
        left_labels = query_labels(query.left, schema)
        right_labels = query_labels(query.right, schema)
        if right_labels != left_labels:
            right = Renaming(right, right_labels, left_labels)
        if query.op == "UNION":
            combined: RAExpr = UnionOp(left, right)
            return combined if query.all else Dedup(combined)
        if query.op == "INTERSECT":
            combined = IntersectionOp(left, right)
            return combined if query.all else Dedup(combined)
        # EXCEPT: Figure 9 gives E1 − ρ(E2) for ALL, ε(E1) − ε(ρ(E2)) otherwise.
        if query.all:
            return DifferenceOp(left, right)
        return DifferenceOp(Dedup(left), Dedup(right))
    assert isinstance(query, Select)
    source = _translate_from(query.from_items, schema, chi)
    condition = _translate_condition(query.where, schema, chi)
    selected = Selection(source, condition)
    alpha = tuple(chi(item.term) for item in query.items)
    beta = tuple(item.alias for item in query.items)
    projected = generalized_projection(
        selected, alpha, beta, schema, supply=chi.supply
    )
    return Dedup(projected) if query.distinct else projected


def _translate_from(
    from_items: Tuple[FromItem, ...], schema: Schema, chi: ChiRenaming
) -> RAExpr:
    """τ : β  ↦  ρ^χ_{N1}(E1) × ⋯ × ρ^χ_{Nk}(Ek)."""
    parts: List[RAExpr] = []
    for item in from_items:
        if item.is_base_table:
            expr: RAExpr = Relation(item.table)
            labels = schema.attributes(item.table)
        else:
            expr = _translate_query(item.table, schema, chi)
            labels = query_labels(item.table, schema)
        if item.column_aliases is not None:
            expr = Renaming(expr, labels, item.column_aliases)
            labels = item.column_aliases
        targets = tuple(chi(FullName(item.alias, a)) for a in labels)
        parts.append(Renaming(expr, labels, targets))
    result = parts[0]
    for part in parts[1:]:
        result = Product(result, part)
    return result


def _translate_condition(
    condition: Condition, schema: Schema, chi: ChiRenaming
) -> RACondition:
    if isinstance(condition, TrueCond):
        return R_TRUE
    if isinstance(condition, FalseCond):
        return R_FALSE
    if isinstance(condition, Predicate):
        return RPredicate(condition.name, tuple(chi.term(t) for t in condition.args))
    if isinstance(condition, IsNull):
        test: RACondition = NullTest(chi.term(condition.term))
        return RNot(test) if condition.negated else test
    if isinstance(condition, InQuery):
        inner = _translate_query(condition.query, schema, chi)
        membership: RACondition = InExpr(
            tuple(chi.term(t) for t in condition.terms), inner
        )
        return RNot(membership) if condition.negated else membership
    if isinstance(condition, Exists):
        inner = _translate_query(condition.query, schema, chi)
        return RNot(Empty(inner))
    if isinstance(condition, And):
        return RAnd(
            _translate_condition(condition.left, schema, chi),
            _translate_condition(condition.right, schema, chi),
        )
    if isinstance(condition, Or):
        return ROr(
            _translate_condition(condition.left, schema, chi),
            _translate_condition(condition.right, schema, chi),
        )
    if isinstance(condition, Not):
        return RNot(_translate_condition(condition.operand, schema, chi))
    raise TypeError(f"not a condition: {condition!r}")


def sql_to_ra(query: Query, schema: Schema) -> RAExpr:
    """The full Theorem 1 pipeline: SQL → SQL-RA → pure relational algebra."""
    from .desugar import desugar

    return desugar(to_sqlra(query, schema), schema)


# ---------------------------------------------------------------------------
# The converse: plain RA → basic SQL ("completely standard")
# ---------------------------------------------------------------------------

_ALIAS = "T"
_ALIAS_LEFT = "T1"
_ALIAS_RIGHT = "T2"


def ra_to_sql(expr: RAExpr, schema: Schema) -> Query:
    """Translate a pure RA expression into an equivalent basic SQL query.

    The resulting query is fully annotated and is itself a data manipulation
    query, closing the equivalence loop of Theorem 1.
    """
    from .ast import is_pure

    if not is_pure(expr):
        raise ValueError("ra_to_sql expects a pure RA expression; desugar first")
    return _ra_query(expr, schema)


def _wrap(expr: RAExpr, schema: Schema, alias: Name) -> FromItem:
    inner = _ra_query(expr, schema)
    return FromItem(inner, alias)


def _select_all(labels: Tuple[Name, ...], alias: Name) -> Tuple[SelectItem, ...]:
    return tuple(SelectItem(FullName(alias, a), a) for a in labels)


def _ra_query(expr: RAExpr, schema: Schema) -> Query:
    labels = signature(expr, schema)
    if isinstance(expr, Relation):
        item = FromItem(expr.name, expr.name)
        return Select(_select_all(labels, expr.name), (item,), TrueCond())
    if isinstance(expr, Projection):
        item = _wrap(expr.source, schema, _ALIAS)
        items = tuple(SelectItem(FullName(_ALIAS, a), a) for a in expr.attributes)
        return Select(items, (item,), TrueCond())
    if isinstance(expr, Selection):
        source_labels = signature(expr.source, schema)
        item = _wrap(expr.source, schema, _ALIAS)
        where = _ra_condition_to_sql(expr.condition, _ALIAS)
        return Select(_select_all(source_labels, _ALIAS), (item,), where)
    if isinstance(expr, Product):
        left_labels = signature(expr.left, schema)
        right_labels = signature(expr.right, schema)
        left = _wrap(expr.left, schema, _ALIAS_LEFT)
        right = _wrap(expr.right, schema, _ALIAS_RIGHT)
        items = tuple(
            SelectItem(FullName(_ALIAS_LEFT, a), a) for a in left_labels
        ) + tuple(SelectItem(FullName(_ALIAS_RIGHT, a), a) for a in right_labels)
        return Select(items, (left, right), TrueCond())
    if isinstance(expr, UnionOp):
        return SetOp("UNION", _ra_query(expr.left, schema), _ra_query(expr.right, schema), all=True)
    if isinstance(expr, IntersectionOp):
        return SetOp(
            "INTERSECT", _ra_query(expr.left, schema), _ra_query(expr.right, schema), all=True
        )
    if isinstance(expr, DifferenceOp):
        return SetOp(
            "EXCEPT", _ra_query(expr.left, schema), _ra_query(expr.right, schema), all=True
        )
    if isinstance(expr, Renaming):
        item = _wrap(expr.source, schema, _ALIAS)
        items = tuple(
            SelectItem(FullName(_ALIAS, old), new)
            for old, new in zip(expr.old, expr.new)
        )
        return Select(items, (item,), TrueCond())
    if isinstance(expr, Dedup):
        source_labels = signature(expr.source, schema)
        item = _wrap(expr.source, schema, _ALIAS)
        return Select(_select_all(source_labels, _ALIAS), (item,), TrueCond(), distinct=True)
    raise TypeError(f"not an RA expression: {expr!r}")


def _ra_term_to_sql(term: RATerm, alias: Name) -> Term:
    if isinstance(term, Attr):
        return FullName(alias, term.name)
    return term


def _ra_condition_to_sql(condition: RACondition, alias: Name) -> Condition:
    from .ast import ConstTest, RFalse, RTrue

    if isinstance(condition, RTrue):
        return TrueCond()
    if isinstance(condition, RFalse):
        return FalseCond()
    if isinstance(condition, RPredicate):
        return Predicate(
            condition.name, tuple(_ra_term_to_sql(t, alias) for t in condition.args)
        )
    if isinstance(condition, NullTest):
        return IsNull(_ra_term_to_sql(condition.term, alias))
    if isinstance(condition, ConstTest):
        return IsNull(_ra_term_to_sql(condition.term, alias), negated=True)
    if isinstance(condition, RAnd):
        return And(
            _ra_condition_to_sql(condition.left, alias),
            _ra_condition_to_sql(condition.right, alias),
        )
    if isinstance(condition, ROr):
        return Or(
            _ra_condition_to_sql(condition.left, alias),
            _ra_condition_to_sql(condition.right, alias),
        )
    if isinstance(condition, RNot):
        return Not(_ra_condition_to_sql(condition.operand, alias))
    raise TypeError(f"cannot translate SQL-RA condition {condition!r} to SQL")
