"""The fluent query builder produces the same ASTs as the parser."""

import pytest

from repro.core import NULL, Schema
from repro.sql.annotate import annotate, annotate_query
from repro.sql.builder import (
    col,
    exists,
    lit,
    null,
    select,
    select_star,
    table,
)
from repro.sql.parser import parse_query


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",), "T": ("B",)})


def same_as_sql(built, text, schema):
    assert annotate_query(built, schema) == annotate(text, schema)


def test_minimal_select(schema):
    q = select(col("R.A")).from_(table("R")).build()
    same_as_sql(q, "SELECT R.A FROM R", schema)


def test_aliases_and_constants(schema):
    q = select(col("R.A").as_("X"), lit(42), null()).from_(table("R")).build()
    same_as_sql(q, "SELECT R.A AS X, 42, NULL FROM R", schema)


def test_bare_columns_resolved_by_annotation(schema):
    q = select(col("B")).from_(table("R")).build()
    same_as_sql(q, "SELECT B FROM R", schema)


def test_where_combinators(schema):
    q = (
        select(col("R.A"))
        .from_(table("R"))
        .where((col("R.A").eq(1) | col("R.B").lt(5)) & ~col("R.A").is_null())
        .build()
    )
    same_as_sql(
        q,
        "SELECT R.A FROM R WHERE (R.A = 1 OR R.B < 5) AND NOT R.A IS NULL",
        schema,
    )


@pytest.mark.parametrize(
    "method,op",
    [("ne", "<>"), ("le", "<="), ("gt", ">"), ("ge", ">=")],
)
def test_all_comparisons(method, op, schema):
    q = (
        select(col("R.A"))
        .from_(table("R"))
        .where(getattr(col("R.A"), method)(3))
        .build()
    )
    same_as_sql(q, f"SELECT R.A FROM R WHERE R.A {op} 3", schema)


def test_like_and_null_tests(schema):
    q = (
        select(col("R.A"))
        .from_(table("R"))
        .where(col("R.A").like("x%") & col("R.B").is_not_null())
        .build()
    )
    same_as_sql(
        q, "SELECT R.A FROM R WHERE R.A LIKE 'x%' AND R.B IS NOT NULL", schema
    )


def test_in_and_not_in(schema):
    sub = select(col("S.A")).from_(table("S"))
    q = select(col("R.A")).from_(table("R")).where(col("R.A").not_in(sub)).build()
    same_as_sql(
        q, "SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema
    )


def test_exists_correlated(schema):
    sub = select(col("S.A")).from_(table("S")).where(col("S.A").eq(col("R.A")))
    q = select(col("R.A")).from_(table("R")).where(exists(sub)).build()
    same_as_sql(
        q,
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
    )


def test_from_subquery_with_alias(schema):
    inner = select(col("T.B").as_("X")).from_(table("T")).as_("U")
    q = select(col("U.X")).from_(inner).build()
    same_as_sql(
        q, "SELECT U.X FROM (SELECT T.B AS X FROM T) AS U", schema
    )


def test_from_subquery_with_column_aliases(schema):
    inner = select(col("T.B")).from_(table("T")).as_("N", "Z")
    q = select(col("N.Z")).from_(inner).build()
    same_as_sql(q, "SELECT N.Z FROM (SELECT T.B FROM T) AS N(Z)", schema)


def test_table_alias(schema):
    q = select(col("X.A")).from_(table("R").as_("X")).build()
    same_as_sql(q, "SELECT X.A FROM R AS X", schema)


def test_star(schema):
    q = select_star().from_(table("R"), table("S")).build()
    same_as_sql(q, "SELECT * FROM R, S", schema)


def test_distinct(schema):
    q = select(col("R.A")).from_(table("R")).distinct().build()
    same_as_sql(q, "SELECT DISTINCT R.A FROM R", schema)


def test_set_operations(schema):
    q = (
        select(col("R.A"))
        .from_(table("R"))
        .union(select(col("S.A")).from_(table("S")), all=True)
        .except_(select(col("T.B")).from_(table("T")))
        .build()
    )
    same_as_sql(
        q,
        "SELECT R.A FROM R UNION ALL SELECT S.A FROM S EXCEPT SELECT T.B FROM T",
        schema,
    )


def test_intersect(schema):
    q = (
        select(col("R.A"))
        .from_(table("R"))
        .intersect(select(col("S.A")).from_(table("S")))
        .build()
    )
    same_as_sql(
        q, "SELECT R.A FROM R INTERSECT SELECT S.A FROM S", schema
    )


def test_builder_is_immutable(schema):
    base = select(col("R.A")).from_(table("R"))
    with_where = base.where(col("R.A").eq(1))
    assert base.build().where != with_where.build().where


def test_subquery_in_from_requires_alias(schema):
    inner = select(col("T.B")).from_(table("T"))
    with pytest.raises(ValueError):
        select(col("U.B")).from_(inner).build()


def test_select_requires_from():
    with pytest.raises(ValueError):
        select(col("R.A")).build()


def test_built_query_evaluates(schema):
    from repro.core import Database
    from repro.semantics import SqlSemantics

    db = Database(schema, {"R": [(1, 2), (NULL, 3)], "S": [(1,)]})
    q = annotate_query(
        select(col("R.B"))
        .from_(table("R"))
        .where(col("R.A").in_(select(col("S.A")).from_(table("S"))))
        .build(),
        schema,
    )
    t = SqlSemantics(schema).run(q, db)
    assert sorted(t.bag) == [(2,)]
