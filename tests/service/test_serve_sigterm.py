"""End-to-end SIGTERM drain for ``repro serve``: the real process, the
real signal handler, exit code 0, and the drain notice on stderr."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


@pytest.mark.skipif(os.name != "posix", reason="SIGTERM semantics are POSIX")
def test_sigterm_drains_and_exits_zero():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", "0", "--drain-s", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("query service at http://"), line
        url = line.split()[3]
        # Prove the service answers before the signal arrives.
        deadline = time.time() + 10
        reply = None
        while time.time() < deadline:
            try:
                with urllib.request.urlopen(f"{url}/health", timeout=2) as resp:
                    reply = json.loads(resp.read())
                break
            except OSError:
                time.sleep(0.05)
        assert reply is not None and reply.get("ok") is True

        proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=15)
        stderr = proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert returncode == 0
    assert "draining in-flight streams" in stderr
