"""Static well-formedness checks: the "successfully compiled" assumption.

Section 2 assumes queries "have been successfully type-checked and
compiled".  This module implements the compile-time checks a conforming
system performs on a fully-annotated query:

* base tables exist, FROM aliases are distinct per block, column-alias lists
  have the right arity;
* every full-name reference resolves against some scope of the chain
  (:class:`~repro.core.errors.UnboundReferenceError` otherwise);
* a reference whose *innermost binding scope* repeats it is ambiguous
  (:class:`~repro.core.errors.AmbiguousReferenceError`) — this is the
  Oracle/standard compile-time error of Example 2, which the paper's
  Oracle-adjusted semantics reproduces; PostgreSQL's compositional semantics
  avoids it for ``SELECT *`` because ``*`` is expanded positionally, so under
  ``star_style="compositional"`` no check is made for star expansion (an
  ambiguous name is still an error when *explicitly referenced*);
* set operations and IN comparisons combine matching arities.

The checker mirrors the evaluator's treatment of the Boolean switch x: a
``SELECT *`` directly under EXISTS is never expanded (standard style), so it
cannot trigger the ambiguity error — exactly the second query of Example 2.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from ..core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    DuplicateAliasError,
    UnboundReferenceError,
)
from ..core.schema import Schema
from ..core.values import FullName, Term
from .ast import (
    And,
    BareColumn,
    Condition,
    Exists,
    FalseCond,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SetOp,
    TrueCond,
    iter_terms,
)
from .labels import query_labels, scope_full_names

__all__ = ["check_query"]

#: A scope for checking: the multiset of full names a FROM clause binds.
_Scope = Counter


def check_query(
    query: Query, schema: Schema, star_style: str = "standard"
) -> None:
    """Raise a :class:`~repro.core.errors.CompileError` subclass if ``query``
    would be rejected by a conforming system, else return None."""
    _check(query, schema, star_style, scopes=[], exists_context=False)


def _check(
    query: Query,
    schema: Schema,
    star_style: str,
    scopes: List[_Scope],
    exists_context: bool,
) -> None:
    if isinstance(query, SetOp):
        left_labels = query_labels(query.left, schema)
        right_labels = query_labels(query.right, schema)
        if len(left_labels) != len(right_labels):
            raise ArityMismatchError(
                f"{query.op} combines arities {len(left_labels)} and "
                f"{len(right_labels)}"
            )
        _check(query.left, schema, star_style, scopes, exists_context=False)
        _check(query.right, schema, star_style, scopes, exists_context=False)
        return
    if not isinstance(query, Select):
        raise TypeError(f"not a query: {query!r}")

    seen_aliases = set()
    for item in query.from_items:
        if item.alias in seen_aliases:
            raise DuplicateAliasError(
                f"alias {item.alias} used twice in the same FROM clause"
            )
        seen_aliases.add(item.alias)
        if not item.is_base_table:
            _check(item.table, schema, star_style, scopes, exists_context=False)

    # scope_full_names also validates base-table existence and column-alias
    # arities (via from_item_labels).
    scope = Counter(scope_full_names(query.from_items, schema))
    inner_scopes = scopes + [scope]

    _check_condition(query.where, schema, star_style, inner_scopes)

    if query.is_star:
        if star_style == "standard" and not exists_context:
            # * expands to ℓ(τ:β); a repeated full name is an ambiguous
            # reference (Example 2's first query).
            for full_name, count in scope.items():
                if count > 1:
                    raise AmbiguousReferenceError(
                        f"SELECT * forces a reference to the repeated full "
                        f"name {full_name}"
                    )
    else:
        for item in query.items:
            _check_term(item.term, inner_scopes)


def _check_condition(
    condition: Condition, schema: Schema, star_style: str, scopes: List[_Scope]
) -> None:
    for term in iter_terms(condition):
        _check_term(term, scopes)
    _walk_subqueries(condition, schema, star_style, scopes)


def _walk_subqueries(
    condition: Condition, schema: Schema, star_style: str, scopes: List[_Scope]
) -> None:
    if isinstance(condition, InQuery):
        labels = query_labels(condition.query, schema)
        if len(labels) != len(condition.terms):
            raise ArityMismatchError(
                f"IN compares {len(condition.terms)} term(s) against a query "
                f"of arity {len(labels)}"
            )
        _check(condition.query, schema, star_style, scopes, exists_context=False)
    elif isinstance(condition, Exists):
        _check(condition.query, schema, star_style, scopes, exists_context=True)
    elif isinstance(condition, (And, Or)):
        _walk_subqueries(condition.left, schema, star_style, scopes)
        _walk_subqueries(condition.right, schema, star_style, scopes)
    elif isinstance(condition, Not):
        _walk_subqueries(condition.operand, schema, star_style, scopes)
    elif isinstance(condition, (TrueCond, FalseCond, Predicate, IsNull)):
        pass
    else:
        raise TypeError(f"not a condition: {condition!r}")


def _check_term(term: Term, scopes: List[_Scope]) -> None:
    if isinstance(term, BareColumn):
        raise UnboundReferenceError(
            f"unannotated column reference {term.name}: run the annotation "
            f"pass before checking"
        )
    if not isinstance(term, FullName):
        return
    for scope in reversed(scopes):
        count = scope.get(term, 0)
        if count > 1:
            raise AmbiguousReferenceError(
                f"reference {term} is ambiguous: the full name is repeated in "
                f"the scope that binds it"
            )
        if count == 1:
            return
    raise UnboundReferenceError(
        f"reference {term} is not bound by any enclosing scope"
    )
