"""The Section 4 correctness criterion and outcome classification."""

import pytest

from repro.core import Table
from repro.core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    UnknownTableError,
)
from repro.validation.compare import (
    Outcome,
    capture,
    explain_difference,
    tables_coincide,
)


def table(cols, rows):
    return Table(cols, rows)


def test_capture_success():
    outcome = capture(lambda: table(("A",), [(1,)]))
    assert not outcome.is_error
    assert outcome.table.columns == ("A",)


def test_capture_ambiguous():
    def boom():
        raise AmbiguousReferenceError("dup")

    outcome = capture(boom)
    assert outcome.error == "ambiguous"
    assert "dup" in outcome.detail


def test_capture_compile_errors_classified_together():
    for exc in (ArityMismatchError("x"), UnknownTableError("y")):
        outcome = capture(lambda e=exc: (_ for _ in ()).throw(e))
        assert outcome.error == "compile"


def test_tables_coincide_criterion():
    assert tables_coincide(table(("A",), [(1,), (2,)]), table(("A",), [(2,), (1,)]))
    assert not tables_coincide(table(("A",), [(1,)]), table(("B",), [(1,)]))
    assert not tables_coincide(table(("A",), [(1,)]), table(("A",), [(1,), (1,)]))


def test_agreement_table_vs_table():
    a = Outcome(table=table(("A",), [(1,)]))
    b = Outcome(table=table(("A",), [(1,)]))
    assert a.agrees_with(b)


def test_agreement_error_vs_error_same_kind():
    a = Outcome(error="ambiguous")
    b = Outcome(error="ambiguous", detail="other message")
    assert a.agrees_with(b)


def test_disagreement_error_vs_table():
    a = Outcome(error="ambiguous")
    b = Outcome(table=table(("A",), [(1,)]))
    assert not a.agrees_with(b)
    assert "one side raised" in explain_difference(a, b)


def test_disagreement_different_errors():
    a = Outcome(error="ambiguous")
    b = Outcome(error="compile")
    assert not a.agrees_with(b)
    assert "different errors" in explain_difference(a, b)


def test_explain_column_difference():
    a = Outcome(table=table(("A",), [(1,)]))
    b = Outcome(table=table(("B",), [(1,)]))
    assert "different columns" in explain_difference(a, b)


def test_explain_multiplicity_difference():
    a = Outcome(table=table(("A",), [(1,), (1,)]))
    b = Outcome(table=table(("A",), [(1,)]))
    text = explain_difference(a, b)
    assert "multiplicities" in text
    assert "2 vs 1" in text


def test_explain_agreement():
    a = Outcome(table=table(("A",), [(1,)]))
    assert explain_difference(a, a) == "outcomes agree"
