"""The bag operations of Section 3 and their defining multiplicity equations."""

import pytest

from repro.core.bag import Bag
from repro.core.values import NULL


def bag(*records):
    return Bag(records)


def test_multiplicity():
    b = bag((1,), (1,), (2,))
    assert b.multiplicity((1,)) == 2
    assert b.multiplicity((2,)) == 1
    assert b.multiplicity((3,)) == 0


def test_len_counts_occurrences():
    assert len(bag((1,), (1,), (2,))) == 3
    assert bag((1,), (1,), (2,)).distinct_size() == 2


def test_union_adds_multiplicities():
    left = bag((1,), (1,))
    right = bag((1,), (2,))
    result = left.union(right)
    assert result.multiplicity((1,)) == 3
    assert result.multiplicity((2,)) == 1


def test_intersection_takes_minimum():
    left = bag((1,), (1,), (2,))
    right = bag((1,), (3,))
    result = left.intersection(right)
    assert result.multiplicity((1,)) == 1
    assert result.multiplicity((2,)) == 0
    assert result.multiplicity((3,)) == 0


def test_difference_truncated_subtraction():
    left = bag((1,), (1,), (2,))
    right = bag((1,), (1,), (1,), (2,))
    result = left.difference(right)
    assert result.is_empty()
    result2 = right.difference(left)
    assert result2.multiplicity((1,)) == 1
    assert result2.multiplicity((2,)) == 0


def test_product_multiplies_multiplicities():
    left = bag((1,), (1,))
    right = bag((2,), (2,), (3,))
    result = left.product(right)
    assert result.multiplicity((1, 2)) == 4
    assert result.multiplicity((1, 3)) == 2
    assert len(result) == 6


def test_distinct_bag():
    b = bag((1,), (1,), (2,))
    eps = b.distinct_bag()
    assert eps.multiplicity((1,)) == 1
    assert eps.multiplicity((2,)) == 1


def test_null_matches_null_in_bag_operations():
    """The syntactic-equality behaviour of Example 1's query Q3."""
    left = bag((1,), (NULL,))
    right = bag((NULL,))
    assert left.difference(right).counts() == {(1,): 1}
    assert left.intersection(right).counts() == {(NULL,): 1}


def test_operator_aliases():
    left, right = bag((1,)), bag((1,), (2,))
    assert left + right == left.union(right)
    assert left & right == left.intersection(right)
    assert (right - left) == right.difference(left)
    assert left * right == left.product(right)


def test_mixed_arity_rejected():
    with pytest.raises(ValueError):
        bag((1,), (1, 2))
    with pytest.raises(ValueError):
        bag((1,)).union(bag((1, 2)))


def test_non_tuple_rejected():
    with pytest.raises(TypeError):
        Bag([[1]])


def test_from_counts():
    b = Bag.from_counts({(1,): 2, (2,): 0})
    assert b.multiplicity((1,)) == 2
    assert (2,) not in b


def test_from_counts_rejects_negative():
    with pytest.raises(ValueError):
        Bag.from_counts({(1,): -1})


def test_empty_bag():
    assert Bag.empty().is_empty()
    assert Bag.empty().arity is None
    assert len(Bag.empty()) == 0


def test_iteration_respects_multiplicity():
    b = bag((1,), (1,), (2,))
    assert sorted(b) == [(1,), (1,), (2,)]
    assert sorted(b.distinct()) == [(1,), (2,)]


def test_contains():
    b = bag((1,))
    assert (1,) in b
    assert (2,) not in b


def test_equality_ignores_insertion_order():
    assert bag((1,), (2,)) == bag((2,), (1,))
    assert bag((1,), (1,)) != bag((1,))


def test_hash_consistent_with_equality():
    assert hash(bag((1,), (2,))) == hash(bag((2,), (1,)))


def test_repr_is_stable():
    assert "Bag(" in repr(bag((1,)))


class TestAlgebraicLaws:
    """Laws that follow from the multiplicity equations."""

    a = bag((1,), (1,), (2,))
    b = bag((1,), (3,))
    c = bag((2,), (3,), (3,))

    def test_union_commutative(self):
        assert self.a.union(self.b) == self.b.union(self.a)

    def test_union_associative(self):
        assert self.a.union(self.b).union(self.c) == self.a.union(
            self.b.union(self.c)
        )

    def test_intersection_commutative(self):
        assert self.a.intersection(self.b) == self.b.intersection(self.a)

    def test_difference_self_is_empty(self):
        assert self.a.difference(self.a).is_empty()

    def test_dedup_idempotent(self):
        assert self.a.distinct_bag().distinct_bag() == self.a.distinct_bag()

    def test_intersection_as_difference(self):
        """T1 ∩ T2 = T1 − (T1 − T2) holds for bag semantics."""
        assert self.a.intersection(self.b) == self.a.difference(
            self.a.difference(self.b)
        )
