"""Plan-rewrite optimizer of the reference engine.

The planner emits the paper-faithful naive plan — every FROM clause is a
Cartesian product with the whole WHERE clause filtered on top, and every
subquery predicate re-executes its subplan per probing row.  This module
rewrites that tree into an equivalent but drastically cheaper one:

* **selection pushdown** — WHERE conjuncts whose depth-0 references fall
  inside a single join child are re-indexed and evaluated below the join —
  sinking *through* the projection of a FROM-subquery into the subquery
  itself when the projected expressions admit substitution — and every
  other conjunct is applied at the earliest left-deep prefix that covers
  its columns (filter-during-product instead of product-then-filter);
* **hash equi-joins** — an equality conjunct between column references of
  two different children turns the Cartesian product into a
  :class:`~repro.engine.operators.HashJoin` on typed, NULL-rejecting keys;
* **cost-aware join ordering** — children of a multi-way FROM are ordered
  by a Selinger-style dynamic program over child subsets that can emit
  *bushy* trees (estimates come from bound table sizes when the plan is
  compiled against a database, from observed-cardinality feedback for
  unbound cache plans, and from a fixed default before anything has been
  seen), so selective hash joins run before Cartesian blowups regardless
  of the syntactic FROM order; a
  :class:`~repro.engine.operators.RemapOp` above the reordered tree keeps
  the output row layout — and with it 3VL semantics, projection indices
  and correlated-subquery references — bit-identical to FROM order;
* **worst-case-optimal multiway joins** — when the cross-child equality
  graph of a FROM is *cyclic* (a connected component with at least as many
  equality edges as children: triangles, 4-cycles, …), no binary join tree
  can avoid a blowup on skewed data, so the whole FROM becomes one
  :class:`~repro.engine.operators.GenericJoin` intersecting per-attribute
  hash tries across all children at once;
* **hash set operations** — :class:`~repro.engine.operators.SetOpNode`
  becomes the streaming :class:`~repro.engine.operators.HashSetOp`, so
  UNION/INTERSECT/EXCEPT no longer count and re-expand both sides and an
  enclosing EXISTS terminates them at the first emitted row;
* **subquery caching** — a *closed* EXISTS/IN subplan (one with no outer
  references, per :meth:`~repro.engine.operators.PlanNode.free_refs`) is
  materialized once: EXISTS becomes a cached boolean
  (:class:`~repro.engine.operators.ExistsProbe`) and IN becomes a frozenset
  semi-join probe with 3VL-correct NULL handling
  (:class:`~repro.engine.operators.SemiJoinProbe`); closed FROM-subqueries
  are materialized once per execution
  (:class:`~repro.engine.operators.CachedSubplan`) and *correlated* ones
  are memoized per binding of the outer values they actually read
  (:class:`~repro.engine.operators.MemoSubplan`);
* **streaming** — correlated EXISTS probes use the operators' generator
  iteration and stop at the first row.

Semantics: on *well-typed* inputs — data on which no predicate can raise at
runtime, which is everything the type checker (:mod:`repro.sql.typecheck`)
admits and everything the Section 4 campaigns generate — the rewrites
preserve results exactly: 3VL conjunction is commutative and associative,
column remapping is a pure permutation, and the differential and validation
campaigns in :mod:`repro.validation` check the optimized engine against the
formal semantics of Figures 5–7 on both dialect variants.  On *ill-typed*
data (a type clash inside an ordered comparison, LIKE on a non-string) the
optimized plan may evaluate a predicate on more or fewer rows than the
naive And-chain — filters are relocated, joins are reordered, hash joins
drop NULL keys early, EXISTS stops at the first row — so whether, and
which, runtime error surfaces is not preserved: a query that naively
returned a table may raise, or vice versa.  That is the latitude real
systems take (SQL leaves evaluation order unspecified, and the RDBMSs the
engine stands in for reject such queries at compile time).
``Engine(..., optimize=False)`` retains the naive path bit-for-bit, for
ablations and as an escape hatch; ``optimize_plan(plan,
reorder_joins=False)`` / ``hash_setops=False`` / ``wcoj=False`` /
``dp_join_order=False`` ablate the second-generation rewrites individually
(the benchmark stages compare them: ``wcoj=False`` keeps binary join trees
even on cyclic patterns, ``dp_join_order=False`` falls back to the greedy
left-deep ordering).
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    NotPred,
    OrPred,
)
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    GenericJoin,
    HashJoin,
    HashSetOp,
    InPred,
    MemoSubplan,
    PlanNode,
    ProjectOp,
    RemapOp,
    SemiJoinProbe,
    SetOpNode,
    StaticScan,
    TableScan,
    _sub_refs,
    pred_refs,
)

__all__ = ["optimize_plan", "estimate_rows"]

Pred = Callable

#: Cardinality guess for a table whose rows are not bound at optimize time
#: (the plan-cache path): the paper's experiments cap tables at 6–50 rows,
#: so any fixed value in that band ranks unbound scans equally and leaves
#: the ordering decision to filters and join edges, which is the intent.
DEFAULT_TABLE_ROWS = 32.0
#: Assumed fraction of rows surviving one equality join edge.
EQ_SELECTIVITY = 0.1
#: Assumed fraction of rows surviving one pushed filter conjunct.
FILTER_SELECTIVITY = 0.5

#: Subset-DP join ordering is O(3^n) in the number of FROM children; past
#: this width the greedy ordering takes over (real queries never get close).
DP_MAX_CHILDREN = 10


def optimize_plan(
    plan: PlanNode,
    reorder_joins: bool = True,
    hash_setops: bool = True,
    wcoj: bool = True,
    dp_join_order: bool = True,
) -> PlanNode:
    """Rewrite a compiled plan into its optimized physical form.

    ``reorder_joins`` / ``hash_setops`` / ``wcoj`` / ``dp_join_order``
    disable the cost-based join ordering, the hash set operations, the
    worst-case-optimal multiway join, and the Selinger-style DP ordering
    (falling back to the greedy one) respectively — ablation knobs for the
    benchmark stages; everything else always applies.

    The returned plan carries a ``_cost_sensitive`` flag: True when some
    join order was chosen from cardinality estimates, i.e. when different
    observed row counts could produce a different plan — the signal the
    engine's rebind feedback loop uses to decide whether re-optimizing a
    cached plan can pay off at all.
    """
    optimizer = _Optimizer(reorder_joins, hash_setops, wcoj, dp_join_order)
    optimized = optimizer.rewrite(plan)
    optimized._cost_sensitive = optimizer.cost_sensitive
    return optimized


class _Optimizer:
    """One rewrite pass; holds the ablation switches."""

    def __init__(
        self,
        reorder_joins: bool,
        hash_setops: bool,
        wcoj: bool = True,
        dp_join_order: bool = True,
    ):
        self.reorder_joins = reorder_joins
        self.hash_setops = hash_setops
        self.wcoj = wcoj
        self.dp_join_order = dp_join_order
        #: Whether any rewrite consulted cardinality estimates.
        self.cost_sensitive = False

    def rewrite(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, FilterOp):
            conjuncts = [self._rewrite_pred(c) for c in _flatten_and(plan.predicate)]
            child = plan.child
            if isinstance(child, CrossJoin) and len(child.children) > 1:
                children = [self._from_item(c) for c in child.children]
                joined = self._build_join(children, conjuncts)
                if joined is not None:
                    return joined
                return FilterOp(CrossJoin(children), _combine(conjuncts))
            return self._filtered(self._from_item(child), conjuncts)
        if isinstance(plan, ProjectOp):
            child = plan.child
            if isinstance(child, (FilterOp, CrossJoin)):
                return ProjectOp(self.rewrite(child), plan.expressions)
            # No WHERE clause: the child IS the single FROM item, so it gets
            # the same cache/memo treatment as a CrossJoin child would.
            return ProjectOp(self._from_item(child), plan.expressions)
        if isinstance(plan, DistinctOp):
            return DistinctOp(self.rewrite(plan.child))
        if isinstance(plan, SetOpNode):
            node = HashSetOp if self.hash_setops else SetOpNode
            return node(
                plan.op, plan.all, self.rewrite(plan.left), self.rewrite(plan.right)
            )
        if isinstance(plan, CrossJoin):
            return CrossJoin([self._from_item(child) for child in plan.children])
        # StaticScan, TableScan and already-optimized nodes are left alone.
        return plan

    def _from_item(self, child: PlanNode) -> PlanNode:
        """Optimize one FROM child; cache or memoize derived plans.

        A closed FROM-subquery (no outer references) always produces the
        same rows, yet a plan sitting inside a correlated WHERE subquery
        re-executes per probing row —
        :class:`~repro.engine.operators.CachedSubplan` makes that a replay.
        A *correlated* FROM-subquery is a pure function of the outer values
        it reads, so it is memoized per binding instead
        (:class:`~repro.engine.operators.MemoSubplan`).  Scans are already
        materialized, so only derived plans are wrapped.
        """
        optimized = self.rewrite(child)
        if isinstance(
            optimized, (StaticScan, TableScan, CachedSubplan, MemoSubplan)
        ):
            return optimized
        free = optimized.free_refs()
        if free == frozenset():
            return CachedSubplan(optimized)
        if free:  # known and non-empty: correlated, memoizable
            return MemoSubplan(optimized, tuple(sorted(free)))
        return optimized  # opaque (free is None): leave untouched

    # -- predicates ----------------------------------------------------------

    def _rewrite_pred(self, pred: Pred) -> Pred:
        """Optimize subplans inside a predicate; cache the closed ones."""
        if isinstance(pred, AndPred):
            return AndPred(self._rewrite_pred(pred.left), self._rewrite_pred(pred.right))
        if isinstance(pred, OrPred):
            return OrPred(self._rewrite_pred(pred.left), self._rewrite_pred(pred.right))
        if isinstance(pred, NotPred):
            return NotPred(self._rewrite_pred(pred.operand))
        if isinstance(pred, (ExistsPred, ExistsProbe)):
            subplan = self.rewrite(pred.subplan)
            free = subplan.free_refs()
            if free == frozenset():
                return ExistsProbe(subplan, closed=True)
            return ExistsProbe(subplan, memo_refs=_sub_refs(free))
        if isinstance(pred, InPred):
            subplan = self.rewrite(pred.subplan)
            free = subplan.free_refs()
            if free == frozenset():
                # No CachedSubplan needed: the probe materializes exactly once.
                return SemiJoinProbe(pred.exprs, subplan, pred.negated)
            return InPred(pred.exprs, subplan, pred.negated, memo_refs=_sub_refs(free))
        # ComparePred / IsNullPred / ConstPred / opaque callables.
        return pred

    # -- filter placement ----------------------------------------------------

    def _filtered(self, child: PlanNode, conjuncts: Sequence[Pred]) -> PlanNode:
        """Apply conjuncts above ``child``, sinking each into FROM-subquery
        structure (:meth:`_sink`) when possible."""
        remaining: List[Pred] = []
        for pred in conjuncts:
            sunk = self._sink(child, pred)
            if sunk is None:
                remaining.append(pred)
            else:
                child = sunk
        if remaining:
            return FilterOp(child, _combine(remaining))
        return child

    def _sink(self, child: PlanNode, pred: Pred) -> Optional[PlanNode]:
        """Push one conjunct through projections into a FROM-subquery.

        Filters commute with duplicate elimination and 1:1 projections, so a
        conjunct over a subquery's output columns can run inside the
        subquery — before its projection, its DISTINCT, and (decisively) its
        per-execution materialization, so a
        :class:`~repro.engine.operators.CachedSubplan` caches the already-
        filtered rows.  Returns the rebuilt child, or None when the conjunct
        cannot be expressed below (opaque predicate, subquery probe, or a
        projection of something other than columns and literals).
        """
        if isinstance(child, DistinctOp):
            inner = self._sink(child.child, pred)
            return DistinctOp(inner) if inner is not None else None
        if isinstance(child, CachedSubplan):
            refs = pred_refs(pred)
            if refs is None or any(depth != 0 for depth, _ in refs):
                # The cached subplan runs with an empty outer stack, so only
                # conjuncts reading the current row alone may move inside.
                return None
            inner = self._sink(child.child, pred)
            if inner is None:
                inner = FilterOp(child.child, pred)
            return CachedSubplan(inner)
        if isinstance(child, ProjectOp):
            method = getattr(pred, "substituted", None)
            substituted = method(child.expressions) if method is not None else None
            if substituted is None:
                return None
            inner = self._sink(child.child, substituted)
            if inner is None:
                inner = FilterOp(child.child, substituted)
            return ProjectOp(inner, child.expressions)
        return None

    # -- join construction ---------------------------------------------------

    def _build_join(
        self, children: List[PlanNode], conjuncts: Sequence[Pred]
    ) -> Optional[PlanNode]:
        """A join tree with pushed filters, hash equi-joins and cost order.

        Children are joined left-deep.  In FROM order a left-deep prefix
        occupies exactly the first ``width`` columns of the final row, so
        prefix filters (including correlated subquery probes, whose depth-1
        references index the probing row) run without any re-indexing.  When
        the cost model picks a different order, introspectable conjuncts are
        re-indexed into the permuted layout and a
        :class:`~repro.engine.operators.RemapOp` restores the FROM-order
        layout on top; conjuncts that cannot be re-indexed (subquery probes,
        opaque callables) are evaluated above the remap, where the layout is
        the original one.  Returns None when child widths are unknown.
        """
        widths = [child.width() for child in children]
        if any(w is None for w in widths):
            return None
        offsets = []
        total = 0
        for w in widths:
            offsets.append(total)
            total += w

        def span_of(index: int) -> int:
            for k in range(len(children) - 1, -1, -1):
                if index >= offsets[k]:
                    return k
            raise AssertionError(f"column index {index} out of range")

        child_filters: List[List[Pred]] = [[] for _ in children]
        edges: List[Tuple[int, int, Pred]] = []  # (global i, global j, pred)
        staged: List[_Conjunct] = []
        for order, pred in enumerate(conjuncts):
            analysis = _Conjunct(pred, order, total)
            endpoints = _equi_endpoints(pred)
            if endpoints is not None and span_of(endpoints[0]) != span_of(endpoints[1]):
                edges.append((endpoints[0], endpoints[1], pred))
                continue
            if analysis.local is not None:
                spans = {span_of(i) for i in analysis.local}
                target = spans.pop() if len(spans) == 1 else None
                if target is not None:
                    shifted = getattr(pred, "shifted", lambda _off: None)(
                        offsets[target]
                    )
                    if shifted is not None:
                        child_filters[target].append(shifted)
                        continue
            staged.append(analysis)

        planned = [
            self._filtered(child, filters) if filters else child
            for child, filters in zip(children, child_filters)
        ]

        edge_spans = [(span_of(i), span_of(j)) for i, j, _pred in edges]
        if self.wcoj and len(children) >= 3 and _is_cyclic(len(children), edge_spans):
            # A cyclic equality pattern: no binary tree avoids the blowup,
            # so the whole FROM becomes one worst-case-optimal join.
            return self._generic_join(planned, offsets, staged, edges, span_of)
        order = list(range(len(children)))
        if self.reorder_joins and len(children) >= 3:
            # Two-child joins are not worth the pass: the order only picks
            # the hash build side, and the ordering machinery (estimates
            # are subtree walks) would tax every compiled plan — the
            # campaigns compile a fresh plan per generated query.
            self.cost_sensitive = True
            if self.dp_join_order and len(children) <= DP_MAX_CHILDREN:
                bushy = self._dp_join(
                    planned, widths, offsets, staged, edges, edge_spans, span_of, total
                )
                if bushy is not None:
                    return bushy
            else:
                order = _greedy_order(planned, edge_spans)
        if order == list(range(len(children))):
            return _left_deep(planned, widths, staged, edges)
        return self._permuted(planned, widths, offsets, staged, edges, order, total)

    # -- worst-case-optimal join ---------------------------------------------

    def _generic_join(
        self,
        planned: List[PlanNode],
        offsets: List[int],
        staged: List["_Conjunct"],
        edges: List[Tuple[int, int, Pred]],
        span_of: Callable[[int], int],
    ) -> PlanNode:
        """All children joined at once by a :class:`GenericJoin`.

        The equality edges are folded into equivalence classes of global
        column indices (union-find); each class spanning the children is
        one join variable, ordered by its first column.  The node's output
        layout is FROM order, so staged conjuncts — including subquery
        probes and opaque callables — run directly above, no remap needed.
        """
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for i, j, _pred in edges:
            parent.setdefault(i, i)
            parent.setdefault(j, j)
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri
        classes: Dict[int, List[int]] = {}
        for g in parent:
            classes.setdefault(find(g), []).append(g)
        variables = tuple(
            tuple((span_of(g), g - offsets[span_of(g)]) for g in sorted(members))
            for members in sorted(classes.values(), key=min)
        )
        join: PlanNode = GenericJoin(planned, variables)
        if staged:
            return FilterOp(join, _combine([c.pred for c in staged]))
        return join

    # -- Selinger-style DP ordering ------------------------------------------

    def _dp_join(
        self,
        planned: List[PlanNode],
        widths: List[int],
        offsets: List[int],
        staged: List["_Conjunct"],
        edges: List[Tuple[int, int, Pred]],
        edge_spans: Sequence[Tuple[int, int]],
        span_of: Callable[[int], int],
        total: int,
    ) -> Optional[PlanNode]:
        """Dynamic program over child subsets, allowing bushy join trees.

        A subset's estimated size is split-independent under the cost model
        (the product of its children's estimates, discounted once per
        internal equality edge — the closed form of :func:`_step_cost`
        iterated), so ``cost(S) = size(S) + min over splits of
        cost(S1) + cost(S2)`` with singleton cost = size.  The identity
        left-deep chain is one of the enumerated trees and is costed by the
        same formula, so the DP plan is used only when *strictly* cheaper —
        an already-good FROM order keeps its remap-free plan (returns None).
        """
        n = len(planned)
        full = (1 << n) - 1
        estimates = [max(estimate_rows(child), 1.0) for child in planned]
        size = [1.0] * (full + 1)
        for mask in range(1, full + 1):
            product = 1.0
            for i in range(n):
                if mask >> i & 1:
                    product *= estimates[i]
            internal = sum(
                1 for a, b in edge_spans if mask >> a & 1 and mask >> b & 1
            )
            size[mask] = product * EQ_SELECTIVITY**internal
        cost = [0.0] * (full + 1)
        split = [0] * (full + 1)
        for i in range(n):
            cost[1 << i] = size[1 << i]
        for mask in range(1, full + 1):
            if mask & (mask - 1) == 0:
                continue
            best = None
            best_sub = 0
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:  # visit each unordered split once
                    combined = cost[sub] + cost[other]
                    if best is None or combined < best:
                        best, best_sub = combined, sub
                sub = (sub - 1) & mask
            cost[mask] = best + size[mask]
            split[mask] = best_sub
        identity_cost = sum(size[1 << i] for i in range(n))
        prefix = 1
        for i in range(1, n):
            prefix |= 1 << i
            identity_cost += size[prefix]
        if not cost[full] < identity_cost:
            return None
        return self._bushy(
            planned, widths, offsets, staged, edges, span_of, size, split, full, total
        )

    def _bushy(
        self,
        planned: List[PlanNode],
        widths: List[int],
        offsets: List[int],
        staged: List["_Conjunct"],
        edges: List[Tuple[int, int, Pred]],
        span_of: Callable[[int], int],
        size: List[float],
        split: List[int],
        full: int,
        total: int,
    ) -> PlanNode:
        """Assemble the DP's chosen (possibly bushy) join tree.

        Each subtree tracks its *layout* — the original global column index
        at every output position — so crossing equality edges become hash
        keys, introspectable staged conjuncts run at the smallest covering
        subtree (re-indexed through the layout), and a final
        :class:`RemapOp` restores the FROM-order layout whenever the
        concatenation order differs; conjuncts that cannot be re-indexed
        (subquery probes, opaque callables) evaluate above the remap where
        the layout is the original one.
        """
        remaining = list(edges)
        pending = list(staged)

        def place_staged(plan: PlanNode, layout: Tuple[int, ...]) -> PlanNode:
            covered = set(layout)
            mapping = [0] * total
            for p, g in enumerate(layout):
                mapping[g] = p
            ready = []
            for conjunct in pending:
                if conjunct.local is None or not conjunct.local <= covered:
                    continue
                method = getattr(conjunct.pred, "remapped", None)
                remapped = method(mapping) if method is not None else None
                if remapped is not None:
                    ready.append((conjunct, remapped))
            if not ready:
                return plan
            for conjunct, _ in ready:
                pending.remove(conjunct)
            return FilterOp(plan, _combine([pred for _, pred in ready]))

        def build(mask: int) -> Tuple[PlanNode, Tuple[int, ...]]:
            if mask & (mask - 1) == 0:
                child = mask.bit_length() - 1
                layout = tuple(range(offsets[child], offsets[child] + widths[child]))
                return planned[child], layout
            sub = split[mask]
            other = mask ^ sub
            # The smaller estimated side becomes the hash build side.
            if size[sub] < size[other]:
                left_mask, right_mask = other, sub
            else:
                left_mask, right_mask = sub, other
            left_plan, left_layout = build(left_mask)
            right_plan, right_layout = build(right_mask)
            layout = left_layout + right_layout
            position = {g: p for p, g in enumerate(layout)}
            crossing = []
            consumed = []
            for edge in remaining:
                i, j, _pred = edge
                a, b = span_of(i), span_of(j)
                if left_mask >> a & 1 and right_mask >> b & 1:
                    crossing.append((i, j))
                    consumed.append(edge)
                elif left_mask >> b & 1 and right_mask >> a & 1:
                    crossing.append((j, i))
                    consumed.append(edge)
            if consumed:
                consumed_ids = {id(edge) for edge in consumed}
                remaining[:] = [e for e in remaining if id(e) not in consumed_ids]
                plan: PlanNode = HashJoin(
                    left_plan,
                    right_plan,
                    tuple(position[g] for g, _ in crossing),
                    tuple(position[g] - len(left_layout) for _, g in crossing),
                )
            else:
                plan = CrossJoin([left_plan, right_plan])
            return place_staged(plan, layout), layout

        tree, layout = build(full)
        assert not remaining, "unplaced equality edges in DP join build"
        if layout != tuple(range(total)):
            position = {g: p for p, g in enumerate(layout)}
            tree = RemapOp(tree, tuple(position[g] for g in range(total)))
        if pending:
            hoisted = [c.pred for c in pending]
            del pending[:]
            tree = FilterOp(tree, _combine(hoisted))
        return tree

    def _permuted(
        self,
        planned: List[PlanNode],
        widths: List[int],
        offsets: List[int],
        staged: List["_Conjunct"],
        edges: List[Tuple[int, int, Pred]],
        order: List[int],
        total: int,
    ) -> PlanNode:
        """Build the join tree in ``order`` and restore the FROM layout."""
        mapping = [0] * total  # original global index -> permuted index
        position = 0
        for child_index in order:
            for local in range(widths[child_index]):
                mapping[offsets[child_index] + local] = position + local
            position += widths[child_index]
        permuted_edges = [(mapping[i], mapping[j], pred) for i, j, pred in edges]
        permuted_staged: List[_Conjunct] = []
        hoisted: List[Pred] = []
        for conjunct in staged:
            method = getattr(conjunct.pred, "remapped", None)
            remapped = method(mapping) if method is not None else None
            if remapped is None:
                hoisted.append(conjunct.pred)
            else:
                permuted_staged.append(_Conjunct(remapped, conjunct.order, total))
        tree = _left_deep(
            [planned[c] for c in order],
            [widths[c] for c in order],
            permuted_staged,
            permuted_edges,
        )
        tree = RemapOp(tree, tuple(mapping))
        if hoisted:
            tree = FilterOp(tree, _combine(hoisted))
        return tree


# -- predicate helpers --------------------------------------------------------


def _flatten_and(pred: Pred) -> List[Pred]:
    """The top-level conjuncts of a predicate, in evaluation order."""
    if isinstance(pred, AndPred):
        return _flatten_and(pred.left) + _flatten_and(pred.right)
    return [pred]


def _combine(conjuncts: Sequence[Pred]) -> Pred:
    """Left-fold conjuncts back into an AND chain (preserving order)."""
    if not conjuncts:
        return ConstPred(True)
    return reduce(AndPred, conjuncts)


class _Conjunct:
    """One WHERE conjunct with its placement analysis."""

    __slots__ = ("pred", "local", "max_local", "order")

    def __init__(self, pred: Pred, order: int, total_width: int):
        self.pred = pred
        self.order = order
        refs = pred_refs(pred)
        if refs is None:
            # Opaque: assume it reads the whole row; apply at full width.
            self.local = None
            self.max_local = total_width - 1
        else:
            self.local = frozenset(i for d, i in refs if d == 0)
            self.max_local = max(self.local, default=-1)


def _is_cyclic(n: int, edge_spans: Sequence[Tuple[int, int]]) -> bool:
    """Whether the cross-child equality graph of a FROM contains a cycle.

    The graph is taken *simple*: parallel edges between the same two
    children collapse into one (a composite-key binary hash join handles
    those without any blowup, so they are not a reason to go multiway).  A
    cycle exists exactly when some edge connects two already-connected
    children — the union-find formulation of #edges ≥ #nodes per component.
    """
    simple = {(min(a, b), max(a, b)) for a, b in edge_spans}
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in simple:
        ra, rb = find(a), find(b)
        if ra == rb:
            return True
        parent[rb] = ra
    return False


def _equi_endpoints(pred: Pred) -> Optional[Tuple[int, int]]:
    """(i, j) column indices if pred is ``row[i] = row[j]``, else None."""
    if (
        isinstance(pred, ComparePred)
        and pred.op == "="
        and isinstance(pred.left, ColumnRef)
        and isinstance(pred.right, ColumnRef)
        and pred.left.depth == 0
        and pred.right.depth == 0
    ):
        return pred.left.index, pred.right.index
    return None


# -- cost model ---------------------------------------------------------------


def estimate_rows(node: PlanNode) -> float:
    """Estimated output cardinality of a (sub)plan.

    Bound scans report their true size; unbound :class:`TableScan` leaves
    (the plan-cache path, where optimization happens before any database is
    attached) report the row count a previous execution observed for their
    table (``observed_rows``, the engine's cardinality feedback) and only
    fall back to :data:`DEFAULT_TABLE_ROWS` — which ranks them equally and
    leaves the ordering decision to pushed filters and join edges — when
    the engine has executed nothing yet.  The estimates only ever *rank* candidate join orders, so crude
    selectivity constants are enough.
    """
    if isinstance(node, StaticScan):
        return float(len(node.data))
    if isinstance(node, TableScan):
        if node.data is not None:
            return float(len(node.data))
        if node.observed_rows is not None:
            # Cardinality feedback: the row count a previous execution
            # observed for this table (seeded by the engine at plan time).
            return float(node.observed_rows)
        return DEFAULT_TABLE_ROWS
    if isinstance(node, FilterOp):
        conjuncts = len(_flatten_and(node.predicate))
        return estimate_rows(node.child) * FILTER_SELECTIVITY**conjuncts
    if isinstance(node, (ProjectOp, DistinctOp, CachedSubplan, MemoSubplan, RemapOp)):
        return estimate_rows(node.child)
    if isinstance(node, (SetOpNode, HashSetOp)):
        left = estimate_rows(node.left)
        right = estimate_rows(node.right)
        if node.op == "UNION":
            return left + right
        if node.op == "INTERSECT":
            return min(left, right)
        return left  # EXCEPT
    if isinstance(node, CrossJoin):
        product = 1.0
        for child in node.children:
            product *= estimate_rows(child)
        return product
    if isinstance(node, HashJoin):
        return estimate_rows(node.left) * estimate_rows(node.right) * EQ_SELECTIVITY
    if isinstance(node, GenericJoin):
        product = 1.0
        for child in node.children:
            product *= estimate_rows(child)
        # One equality-edge discount per column pair each variable equates.
        equated = sum(len(var) - 1 for var in node.variables)
        return product * EQ_SELECTIVITY**equated
    return DEFAULT_TABLE_ROWS


def _step_cost(
    current: float,
    candidate: int,
    placed: set,
    estimates: Sequence[float],
    edge_spans: Sequence[Tuple[int, int]],
) -> float:
    """Estimated size after joining ``candidate`` onto a prefix of size
    ``current`` — the one cost step both the greedy walk and the order
    comparison use (they must agree on the model)."""
    joined = sum(
        1
        for a, b in edge_spans
        if (a == candidate and b in placed) or (b == candidate and a in placed)
    )
    return current * max(estimates[candidate], 1.0) * EQ_SELECTIVITY**joined


def _order_cost(
    order: Sequence[int], estimates: Sequence[float], edge_spans: Sequence[Tuple[int, int]]
) -> float:
    """Sum of estimated intermediate cardinalities along a join order."""
    placed = {order[0]}
    current = max(estimates[order[0]], 1.0)
    cost = current
    for j in order[1:]:
        current = _step_cost(current, j, placed, estimates, edge_spans)
        cost += current
        placed.add(j)
    return cost


def _greedy_order(
    planned: Sequence[PlanNode], edge_spans: Sequence[Tuple[int, int]]
) -> List[int]:
    """A greedy minimum-intermediate-size join order.

    Starts from the smallest (most-connected on ties) child and repeatedly
    joins the candidate minimizing the estimated next intermediate size —
    equality edges to the placed prefix discount a candidate, so connected
    children join before Cartesian blowups.  Returns the identity order
    unless the chosen one is estimated strictly cheaper, so already-good
    FROM orders keep their remap-free plan.
    """
    n = len(planned)
    estimates = [estimate_rows(child) for child in planned]
    degree = [0] * n
    for a, b in edge_spans:
        degree[a] += 1
        degree[b] += 1
    start = min(range(n), key=lambda i: (estimates[i], -degree[i], i))
    order = [start]
    placed = {start}
    current = max(estimates[start], 1.0)
    while len(order) < n:
        best = None
        best_cost = None
        for j in range(n):
            if j in placed:
                continue
            cost = _step_cost(current, j, placed, estimates, edge_spans)
            if best_cost is None or cost < best_cost:
                best, best_cost = j, cost
        order.append(best)
        placed.add(best)
        current = max(best_cost, 1.0)
    identity = list(range(n))
    if order == identity:
        return identity
    if _order_cost(order, estimates, edge_spans) < _order_cost(
        identity, estimates, edge_spans
    ):
        return order
    return identity


# -- left-deep assembly -------------------------------------------------------


def _left_deep(
    planned: List[PlanNode],
    widths: List[int],
    staged: List[_Conjunct],
    edges: List[Tuple[int, int, Pred]],
) -> PlanNode:
    """Fold children left-deep, consuming staged filters and equi edges.

    ``staged`` and ``edges`` must be expressed in the concatenated layout of
    ``planned`` (the caller re-indexes them when the order is permuted).
    Each staged conjunct runs at the earliest prefix covering its columns;
    each edge becomes hash-join keys the moment its second endpoint joins.
    """
    staged = list(staged)
    edges = list(edges)
    offsets = []
    total = 0
    for w in widths:
        offsets.append(total)
        total += w

    def apply_stage(plan: PlanNode, width: int) -> PlanNode:
        ready = [c for c in staged if c.max_local < width]
        if not ready:
            return plan
        for c in ready:
            staged.remove(c)
        return FilterOp(plan, _combine([c.pred for c in ready]))

    current = apply_stage(planned[0], widths[0])
    width = widths[0]
    for k in range(1, len(planned)):
        span_lo, span_hi = offsets[k], offsets[k] + widths[k]
        usable = [
            e
            for e in edges
            if (e[0] < width and span_lo <= e[1] < span_hi)
            or (e[1] < width and span_lo <= e[0] < span_hi)
        ]
        if usable:
            left_keys = []
            right_keys = []
            for i, j, _pred in usable:
                prefix_side, child_side = (i, j) if i < width else (j, i)
                left_keys.append(prefix_side)
                right_keys.append(child_side - span_lo)
            edges = [e for e in edges if e not in usable]
            current = HashJoin(
                current, planned[k], tuple(left_keys), tuple(right_keys)
            )
        else:
            current = CrossJoin([current, planned[k]])
        width += widths[k]
        current = apply_stage(current, width)
    assert not staged and not edges, "unplaced conjuncts in join build"
    return current
