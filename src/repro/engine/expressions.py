"""Runtime expressions and truth handling for the reference engine.

The engine is the stand-in for PostgreSQL/Oracle in the Section 4 validation
experiment, so it is deliberately implemented *independently* of the formal
semantics: nulls are Python ``None`` (not the :data:`repro.core.values.NULL`
sentinel), truth values are ``True`` / ``False`` / ``None`` (unknown), and
column references are compiled to positional ``(depth, index)`` lookups into
the current row and the stack of outer rows — the way a real executor
resolves correlated references.

Only the input/output boundary converts between the two representations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.errors import CompileError

__all__ = [
    "Row",
    "OuterStack",
    "ColumnRef",
    "LiteralExpr",
    "RowExpr",
    "and3",
    "or3",
    "not3",
    "compare",
    "COMPARE_FUNCS",
]

#: A runtime row: a tuple of ints/strings/None.
Row = Tuple[object, ...]

#: The stack of outer rows for correlated subqueries (innermost last).
OuterStack = Tuple[Row, ...]


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A compiled column reference: depth 0 is the current row, depth k > 0
    the k-th enclosing row on the outer stack."""

    depth: int
    index: int

    def __call__(self, row: Row, outers: OuterStack) -> object:
        if self.depth == 0:
            return row[self.index]
        return outers[-self.depth][self.index]


@dataclass(frozen=True, slots=True)
class LiteralExpr:
    """A constant (or None for SQL NULL)."""

    value: object

    def __call__(self, row: Row, outers: OuterStack) -> object:
        return self.value


RowExpr = Callable[[Row, OuterStack], object]


# -- three-valued connectives over True/False/None ---------------------------


def and3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def or3(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def not3(a: Optional[bool]) -> Optional[bool]:
    if a is None:
        return None
    return not a


# -- comparisons -----------------------------------------------------------------


def _like(value: object, pattern: object) -> bool:
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise CompileError("LIKE is defined on strings only")
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def _ordered(op: str, a: object, b: object) -> bool:
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} {op} {b!r}")
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


COMPARE_FUNCS = {
    "=": lambda a, b: a == b and isinstance(a, str) == isinstance(b, str),
    "<>": lambda a, b: not (a == b and isinstance(a, str) == isinstance(b, str)),
    "<": lambda a, b: _ordered("<", a, b),
    "<=": lambda a, b: _ordered("<=", a, b),
    ">": lambda a, b: _ordered(">", a, b),
    ">=": lambda a, b: _ordered(">=", a, b),
    "LIKE": _like,
}


def compare(op: str, a: object, b: object) -> Optional[bool]:
    """SQL comparison: None (unknown) when either side is NULL."""
    if a is None or b is None:
        return None
    try:
        func = COMPARE_FUNCS[op]
    except KeyError:
        raise CompileError(f"unknown comparison operator: {op}") from None
    return func(a, b)
