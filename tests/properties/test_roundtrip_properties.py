"""Property-based round trips through the SQL front end.

Hypothesis drives the seeded query generator (a compact way to get arbitrary
well-formed ASTs of the full fragment) and checks that printing and parsing
are mutually inverse, in every dialect, and that annotation is idempotent."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import validation_schema
from repro.generator import DM_CONFIG, PAPER_CONFIG, QueryGenerator
from repro.sql import annotate_query, parse_query, print_query

SCHEMA = validation_schema(4)

seeds = st.integers(min_value=0, max_value=10_000)
dialects = st.sampled_from(["standard", "postgres", "oracle"])


def generate(seed, config=PAPER_CONFIG):
    return QueryGenerator(SCHEMA, config, random.Random(seed)).generate()


@given(seeds, dialects)
@settings(max_examples=150, deadline=None)
def test_parse_print_roundtrip(seed, dialect):
    query = generate(seed)
    assert parse_query(print_query(query, dialect)) == query


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_double_print_is_stable(seed):
    query = generate(seed)
    once = print_query(query)
    twice = print_query(parse_query(once))
    assert once == twice


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_annotation_idempotent_on_generated_queries(seed):
    """Generated queries are already fully annotated; annotating them again
    must be the identity."""
    query = generate(seed)
    assert annotate_query(query, SCHEMA) == query


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_dm_queries_roundtrip(seed):
    query = generate(seed, DM_CONFIG)
    assert parse_query(print_query(query)) == query
