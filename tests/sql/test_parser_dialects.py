"""Dialect-strict parsing: EXCEPT vs MINUS availability (Section 4)."""

import pytest

from repro.core.errors import ParseError
from repro.sql.parser import parse_query

EXCEPT_Q = "SELECT R.A FROM R EXCEPT SELECT S.A FROM S"
MINUS_Q = "SELECT R.A FROM R MINUS SELECT S.A FROM S"
UNION_Q = "SELECT R.A FROM R UNION SELECT S.A FROM S"


def test_standard_accepts_both():
    assert parse_query(EXCEPT_Q).op == "EXCEPT"
    assert parse_query(MINUS_Q).op == "EXCEPT"


def test_postgres_accepts_except_only():
    assert parse_query(EXCEPT_Q, dialect="postgres").op == "EXCEPT"
    with pytest.raises(ParseError):
        parse_query(MINUS_Q, dialect="postgres")


def test_oracle_accepts_minus_only():
    assert parse_query(MINUS_Q, dialect="oracle").op == "EXCEPT"
    with pytest.raises(ParseError):
        parse_query(EXCEPT_Q, dialect="oracle")


def test_mysql_has_no_difference_operation():
    """MySQL 'does not have it altogether'."""
    for text in (EXCEPT_Q, MINUS_Q):
        with pytest.raises(ParseError):
            parse_query(text, dialect="mysql")


def test_all_dialects_accept_union_and_intersect():
    for dialect in ("standard", "postgres", "oracle", "mysql"):
        assert parse_query(UNION_Q, dialect=dialect).op == "UNION"


def test_unknown_dialect_rejected():
    with pytest.raises(ValueError):
        parse_query(EXCEPT_Q, dialect="db2")


def test_printer_parser_dialect_consistency():
    """What the oracle printer emits, the oracle parser accepts (and the
    postgres parser rejects), and vice versa."""
    from repro.sql.printer import print_query

    q = parse_query(EXCEPT_Q)
    oracle_text = print_query(q, "oracle")
    postgres_text = print_query(q, "postgres")
    assert parse_query(oracle_text, dialect="oracle") == q
    assert parse_query(postgres_text, dialect="postgres") == q
    with pytest.raises(ParseError):
        parse_query(oracle_text, dialect="postgres")
    with pytest.raises(ParseError):
        parse_query(postgres_text, dialect="oracle")
