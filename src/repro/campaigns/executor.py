"""The campaign execution core: seed-sharded, parallel, resumable.

:func:`run_campaign` drives any comparator backend over a contiguous seed
range.  Its determinism contract is the subsystem's central invariant:

    every trial is a pure function of its seed — the query, the database
    and the comparison all derive from ``random.Random(seed)`` — and the
    aggregate (:mod:`repro.campaigns.aggregate`) is order-independent, so
    a campaign's :class:`~repro.campaigns.aggregate.CampaignResult` is
    bit-identical (agreements, mismatches, per-seed outcome digest) for
    any ``jobs`` value, any shard size, and any interrupt/resume history.

Execution model
---------------

The seed range is split into contiguous shards
(:func:`plan_shards`); with ``jobs > 1`` a ``multiprocessing.Pool`` of
workers each rebuilds the backend from the picklable
:class:`~repro.campaigns.backends.CampaignSpec` (one build per worker
lifetime, one engine plan cache per worker).  Records stream back as each
shard finishes (unordered — completed shards are never buffered behind a
slow earlier one), are appended to the JSONL checkpoint (flushed per
shard — a kill loses at most the shards still in flight), and are
folded into the running aggregate immediately, so memory use does not grow
with the trial count.

``resume=True`` loads an existing checkpoint
(:mod:`repro.campaigns.checkpoint`), verifies it was produced by the same
spec and base seed, folds the completed trials, and dispatches only the
missing seeds.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, List, Optional, Sequence, Union

from .aggregate import Aggregator, CampaignResult
from .backends import CampaignSpec, RunnerBackend
from .checkpoint import CHECKPOINT_SCHEMA, CheckpointWriter, load_checkpoint

__all__ = ["run_campaign", "plan_shards"]

#: Upper bound on seeds per shard; small enough to checkpoint frequently,
#: large enough to amortize inter-process dispatch.
MAX_SHARD = 500

_WORKER_BACKEND = None


def _init_worker(spec: CampaignSpec) -> None:
    """Pool initializer: build this worker's backend exactly once."""
    global _WORKER_BACKEND
    _WORKER_BACKEND = spec.build()


def _run_shard(seeds: Sequence[int]) -> List[dict]:
    return [_WORKER_BACKEND.run_trial(seed) for seed in seeds]


def plan_shards(
    seeds: Sequence[int], jobs: int, max_shard: int = MAX_SHARD
) -> List[List[int]]:
    """Split ``seeds`` into contiguous shards, ~8 per worker, capped at
    ``max_shard`` seeds so checkpoints stay fresh even with few workers."""
    if not seeds:
        return []
    target = max(1, min(max_shard, -(-len(seeds) // (max(1, jobs) * 8))))
    return [list(seeds[i : i + target]) for i in range(0, len(seeds), target)]


def run_campaign(
    spec: Union[CampaignSpec, RunnerBackend],
    trials: int,
    base_seed: int = 0,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignResult:
    """Run ``trials`` seeds ``[base_seed, base_seed + trials)`` of a campaign.

    ``spec`` is normally a :class:`CampaignSpec`; a prebuilt backend object
    (e.g. :class:`RunnerBackend`) is accepted for in-process use but cannot
    be shipped to workers, so it requires ``jobs=1``.
    """
    is_spec = isinstance(spec, CampaignSpec)
    if not is_spec and jobs > 1:
        raise ValueError(
            "a prebuilt backend cannot be rebuilt in worker processes; "
            "use a CampaignSpec for jobs > 1"
        )
    label = spec.label
    aggregator = Aggregator(label, base_seed, trials)

    resumed = 0
    writer: Optional[CheckpointWriter] = None
    if checkpoint is not None:
        header = {
            "schema": CHECKPOINT_SCHEMA,
            "spec": spec.to_json() if is_spec else {"label": label},
            "base_seed": base_seed,
            "trials": trials,
        }
        fresh = True
        if resume:
            # Strict: resuming over a corrupted interior line would
            # silently drop completed work and change the digest.  A torn
            # *final* line (kill mid-write) is still tolerated.
            existing_header, records = load_checkpoint(checkpoint, strict=True)
            if existing_header is not None:
                _check_header(existing_header, header)
                for record in records:
                    if aggregator.add(record):
                        resumed += 1
                fresh = False
        writer = CheckpointWriter(checkpoint, header, fresh=fresh)
    elif resume:
        raise ValueError("resume=True requires a checkpoint path")

    pending = aggregator.pending_seeds()
    shards = plan_shards(pending, jobs)
    started = time.perf_counter()
    try:
        if jobs <= 1 or len(pending) <= 1:
            backend = spec.build() if is_spec else spec
            for shard in shards:
                records = [backend.run_trial(seed) for seed in shard]
                _absorb(records, aggregator, writer, progress)
        else:
            context = multiprocessing.get_context()
            with context.Pool(
                processes=min(jobs, len(shards)),
                initializer=_init_worker,
                initargs=(spec,),
            ) as pool:
                # Unordered: shards are checkpointed the moment they finish.
                # An ordered imap would buffer completed shards behind a slow
                # earlier one, so a kill could lose up to jobs-1 finished
                # shards; aggregation is order-independent, so nothing is
                # gained by waiting.
                for records in pool.imap_unordered(_run_shard, shards):
                    _absorb(records, aggregator, writer, progress)
    finally:
        if writer is not None:
            writer.close()
    elapsed = time.perf_counter() - started
    return aggregator.finalize(
        elapsed_s=elapsed, jobs=max(1, jobs), resumed_trials=resumed
    )


def _absorb(records, aggregator, writer, progress) -> None:
    fresh = [record for record in records if aggregator.add(record)]
    if writer is not None and fresh:
        writer.write_records(fresh)
    if progress is not None:
        progress(aggregator.completed, aggregator.trials)


def _check_header(existing: dict, expected: dict) -> None:
    if existing.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"checkpoint schema {existing.get('schema')!r} is not "
            f"{CHECKPOINT_SCHEMA!r}"
        )
    for key in ("spec", "base_seed"):
        if existing.get(key) != expected[key]:
            raise ValueError(
                f"checkpoint {key} mismatch: file has {existing.get(key)!r}, "
                f"campaign wants {expected[key]!r}"
            )
