"""Environments η and the scoping operators ⇑, ;, ⊕ of Section 3."""

import pytest

from repro.core.env import EMPTY_ENV, Environment
from repro.core.errors import AmbiguousReferenceError, UnboundReferenceError
from repro.core.values import NULL, FullName

RA = FullName("R", "A")
RB = FullName("R", "B")
SA = FullName("S", "A")


def test_empty_env_lookup_unbound():
    with pytest.raises(UnboundReferenceError):
        EMPTY_ENV.lookup(RA)


def test_from_bindings_basic():
    env = Environment.from_bindings((RA, RB), (1, 2))
    assert env.lookup(RA) == 1
    assert env.lookup(RB) == 2


def test_from_bindings_null_value():
    env = Environment.from_bindings((RA,), (NULL,))
    assert env.lookup(RA) is NULL
    assert env.defined_on(RA)


def test_from_bindings_repeated_name_is_ambiguous():
    """η_{Ā,r̄} is undefined on repeated full names (Example 2's situation)."""
    env = Environment.from_bindings((RA, RA), (1, 2))
    with pytest.raises(AmbiguousReferenceError):
        env.lookup(RA)
    assert not env.defined_on(RA)


def test_from_bindings_length_mismatch():
    with pytest.raises(ValueError):
        Environment.from_bindings((RA,), (1, 2))


def test_unbind():
    env = Environment.from_bindings((RA, RB), (1, 2))
    smaller = env.unbind([RA])
    assert not smaller.defined_on(RA)
    assert smaller.lookup(RB) == 2


def test_unbind_nothing_is_identity():
    env = Environment.from_bindings((RA,), (1,))
    assert env.unbind([]) is env


def test_override_later_wins():
    outer = Environment.from_bindings((RA, RB), (1, 2))
    inner = Environment.from_bindings((RA,), (9,))
    merged = outer.override(inner)
    assert merged.lookup(RA) == 9
    assert merged.lookup(RB) == 2


def test_override_with_empty_is_identity():
    env = Environment.from_bindings((RA,), (1,))
    assert env.override(EMPTY_ENV) is env


def test_update_definition():
    """η ⊕r̄ Ā = (η ⇑ Ā); η_{Ā,r̄} — the composite equals its definition."""
    env = Environment.from_bindings((RA, SA), (1, 5))
    record = (7, 8)
    names = (RA, RB)
    composite = env.update(record, names)
    expected = env.unbind(names).override(Environment.from_bindings(names, record))
    assert composite == expected
    assert composite.lookup(RA) == 7
    assert composite.lookup(RB) == 8
    assert composite.lookup(SA) == 5


def test_update_shadows_with_ambiguity():
    """A repeated name in the new scope hides the outer binding entirely:
    the reference becomes ambiguous rather than falling through."""
    outer = Environment.from_bindings((RA,), (1,))
    updated = outer.update((2, 3), (RA, RA))
    with pytest.raises(AmbiguousReferenceError):
        updated.lookup(RA)


def test_bound_names_excludes_ambiguous():
    env = Environment.from_bindings((RA, RA, RB), (1, 2, 3))
    assert set(env.bound_names()) == {RB}


def test_equality():
    a = Environment.from_bindings((RA,), (1,))
    b = Environment.from_bindings((RA,), (1,))
    c = Environment.from_bindings((RA,), (2,))
    assert a == b
    assert a != c


def test_repr():
    env = Environment.from_bindings((RA,), (1,))
    assert "R.A" in repr(env)
