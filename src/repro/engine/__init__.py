"""Independent reference engine (the PostgreSQL/Oracle stand-in of Section 4).

``Engine(schema, dialect)`` optimizes by default (pushdown, hash joins,
cached subquery probes) and executes plans through the closure-generating
compiler (:mod:`repro.engine.compile`); ``Engine(schema, dialect,
optimize=False)`` is the paper's naive product-then-filter evaluation and
``Engine(schema, dialect, compiled=False)`` the interpreted operator tree,
both kept for ablations.
"""

from .binding import bind_plan, reset_plan
from .compile import compile_plan, compile_predicate
from .engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from .optimizer import optimize_plan
from .planner import CompiledQuery, Planner

__all__ = [
    "Engine",
    "Planner",
    "CompiledQuery",
    "optimize_plan",
    "compile_plan",
    "compile_predicate",
    "bind_plan",
    "reset_plan",
    "DIALECT_POSTGRES",
    "DIALECT_ORACLE",
]
