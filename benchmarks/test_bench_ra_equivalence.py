"""Experiment T1 (Theorem 1 / Section 5): basic SQL ≡ relational algebra.

The paper proves that data manipulation queries of basic SQL and RA under
bag semantics have the same expressive power, via the SQL-RA intermediate
language (Proposition 1) and its desugaring (Proposition 2).  This bench
checks the whole chain empirically on random data manipulation queries:

    SQL  ──Fig.9──▶  SQL-RA  ──Prop.2──▶  pure RA  ──standard──▶  SQL

with agreement required at every stage, and reports the worked translations
of Q1/Q3 from the end of Section 5.
"""

import random

from repro.algebra import RASemantics, desugar, is_pure, ra_to_sql, sql_to_ra, to_sqlra
from repro.core import NULL, Database, Schema, validation_schema
from repro.generator import DM_CONFIG, DataFillerConfig, QueryGenerator, fill_database
from repro.semantics import SqlSemantics
from repro.sql import annotate
from repro.validation.report import format_table

from .conftest import print_banner, trials


def run_equivalence_campaign():
    schema = validation_schema()
    sem = SqlSemantics(schema)
    ra = RASemantics(schema)
    data = DataFillerConfig(max_rows=3)
    count = trials(100)
    agree_sqlra = agree_pure = agree_back = 0
    for seed in range(count):
        rng = random.Random(seed)
        query = QueryGenerator(schema, DM_CONFIG, rng).generate()
        db = fill_database(schema, rng, data)
        expected = sem.run(query, db)
        sqlra = to_sqlra(query, schema)
        if ra.evaluate(sqlra, db).same_as(expected):
            agree_sqlra += 1
        pure = desugar(sqlra, schema)
        assert is_pure(pure)
        if ra.evaluate(pure, db).same_as(expected):
            agree_pure += 1
        back = ra_to_sql(pure, schema)
        if sem.run(back, db).same_as(expected):
            agree_back += 1
    return count, agree_sqlra, agree_pure, agree_back


def worked_example_rows():
    schema = Schema({"R": ("A",), "S": ("A",)})
    db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    ra = RASemantics(schema)
    rows = []
    for name, text, expected in [
        ("Q1", "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", "∅"),
        ("Q3", "SELECT R.A FROM R EXCEPT SELECT S.A FROM S", "{1}"),
    ]:
        expr = sql_to_ra(annotate(text, schema), schema)
        result = sorted(ra.evaluate(expr, db).bag, key=repr)
        rendered = "∅" if not result else "{" + ", ".join(str(r[0]) for r in result) + "}"
        rows.append((name, expected, rendered))
    return rows


def test_bench_ra_equivalence(benchmark):
    count, agree_sqlra, agree_pure, agree_back = benchmark.pedantic(
        run_equivalence_campaign, rounds=1, iterations=1
    )
    print_banner(
        "T1 — Theorem 1: SQL ≡ SQL-RA ≡ pure RA ≡ SQL (random DM queries)"
    )
    print(
        format_table(
            ("stage", "trials", "agreements"),
            [
                ("SQL → SQL-RA (Fig. 9)", count, agree_sqlra),
                ("SQL-RA → pure RA (Prop. 2)", count, agree_pure),
                ("pure RA → SQL (standard)", count, agree_back),
            ],
        )
    )
    print("Worked translations (end of Section 5):")
    print(format_table(("query", "paper", "measured"), worked_example_rows()))
    assert agree_sqlra == count
    assert agree_pure == count
    assert agree_back == count
