"""The live-SQLite comparator: translation gaps, divergence classification
(one pinning test per class in DIVERGENCE_CLASSES), and the trial codes."""

import sqlite3
from pathlib import Path

import pytest

from repro.campaigns.backends import (
    CODE_AGREE,
    CODE_CLASSIFIED,
    CODE_MISMATCH,
)
from repro.core.values import NULL, FullName
from repro.ingest import import_scenario
from repro.ingest.demo import library_scenario
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD
from repro.sql.ast import (
    FromItem,
    Predicate,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
)
from repro.sql.printer import print_query
from repro.sql.typecheck import check_query
from repro.validation.compare import capture
from repro.validation.live import (
    DIVERGENCE_CLASSES,
    DialectGapError,
    LiveSqliteRunner,
    bags_match,
    classify_repro_error,
    classify_sqlite_error,
    load_scenario,
    translate_query,
)

FIXTURE = str(Path(__file__).resolve().parent.parent / "fixtures" / "library.sql")


@pytest.fixture(scope="module")
def scenario():
    return import_scenario(FIXTURE)


def single(table, column, alias="T1", out="C1"):
    return Select(
        (SelectItem(FullName(alias, column), out),),
        (FromItem(table, alias),),
        TRUE_COND,
    )


# -- class: sqlite-no-bag-setop ------------------------------------------------


@pytest.mark.parametrize("op", ["INTERSECT", "EXCEPT"])
def test_pin_sqlite_no_bag_setop(op):
    query = SetOp(
        op,
        single("authors", "author_id"),
        single("authors", "author_id", alias="T2", out="C1"),
        all=True,
    )
    with pytest.raises(DialectGapError) as excinfo:
        translate_query(query)
    assert excinfo.value.divergence_class == "sqlite-no-bag-setop"


def test_union_all_is_not_a_gap():
    query = SetOp(
        "UNION",
        single("authors", "author_id"),
        single("authors", "author_id", alias="T2", out="C1"),
        all=True,
    )
    assert "UNION ALL" in translate_query(query)


def test_setop_gap_detected_inside_nested_operand():
    inner = SetOp(
        "INTERSECT",
        single("authors", "author_id"),
        single("authors", "author_id", alias="T2", out="C1"),
        all=True,
    )
    query = SetOp("UNION", single("authors", "author_id", alias="T3"), inner)
    with pytest.raises(DialectGapError):
        translate_query(query)


# -- class: sqlite-no-from-column-aliases --------------------------------------


def test_pin_sqlite_no_from_column_aliases():
    inner = single("authors", "author_id")
    query = Select(
        (SelectItem(FullName("T9", "X"), "C1"),),
        (FromItem(inner, "T9", column_aliases=("X",)),),
        TRUE_COND,
    )
    with pytest.raises(DialectGapError) as excinfo:
        translate_query(query)
    assert excinfo.value.divergence_class == "sqlite-no-from-column-aliases"


# -- class: dialect-ambiguity --------------------------------------------------


def ambiguous_query():
    """Referencing into a FROM-subquery whose star exposed duplicate names:
    the repository rejects the reference as ambiguous (under both star
    styles), SQLite silently resolves it."""
    inner = Select(
        STAR,
        (FromItem("loans", "T0"), FromItem("stock", "T00")),
        TRUE_COND,
    )
    return Select(
        (SelectItem(FullName("T1", "book_id"), "C1"),),
        (FromItem(inner, "T1"),),
        TRUE_COND,
    )


@pytest.mark.parametrize("star", [STAR_COMPOSITIONAL, STAR_STANDARD])
def test_pin_dialect_ambiguity(scenario, star):
    query = ambiguous_query()
    outcome = capture(
        lambda: check_query(query, scenario.schema, star_style=star)
    )
    assert outcome.is_error
    assert classify_repro_error(outcome.error, outcome.detail) == (
        "dialect-ambiguity"
    )
    # SQLite executes the same SQL without complaint.
    conn = sqlite3.connect(":memory:")
    load_scenario(conn, scenario)
    rows = conn.execute(print_query(query, "postgres")).fetchall()
    conn.close()
    assert rows is not None


# -- class: dialect-type-order -------------------------------------------------


def test_pin_dialect_type_order(scenario):
    query = Select(
        (SelectItem(FullName("T1", "author_id"), "C1"),),
        (FromItem("authors", "T1"),),
        Predicate("<", (FullName("T1", "author_id"), "zzz")),
    )
    runner = LiveSqliteRunner(scenario)

    def engine_side():
        check_query(query, scenario.schema, star_style=runner.star_style)
        return runner.engine.execute(query, scenario.database)

    outcome = capture(engine_side)
    assert outcome.is_error
    assert classify_repro_error(outcome.error, outcome.detail) == (
        "dialect-type-order"
    )
    # SQLite orders across storage classes instead of erroring.
    rows = runner.conn.execute(print_query(query, "postgres")).fetchall()
    assert rows is not None
    runner.close()


# -- class: sqlite-limit -------------------------------------------------------


def test_pin_sqlite_limit_expression_depth():
    """A genuinely-deep expression trips SQLite's parser limit; the error is
    classified (the repository's recursive evaluators have no such cap at
    this depth)."""
    conn = sqlite3.connect(":memory:")
    sql = "SELECT " + "(" * 2000 + "1" + ")" * 2000
    with pytest.raises(sqlite3.Error) as excinfo:
        conn.execute(sql)
    conn.close()
    assert classify_sqlite_error(excinfo.value) == "sqlite-limit"


@pytest.mark.parametrize(
    "message",
    [
        "parser stack overflow",
        "Expression tree is too large (maximum depth 1000)",
        "too many terms in compound SELECT",
    ],
)
def test_classify_sqlite_limit_messages(message):
    assert classify_sqlite_error(sqlite3.OperationalError(message)) == (
        "sqlite-limit"
    )


def test_unknown_sqlite_error_is_not_classified():
    assert classify_sqlite_error(sqlite3.OperationalError("no such table")) is (
        None
    )


def test_unknown_repro_error_is_not_classified():
    assert classify_repro_error("compile", "unknown table") is None


# -- bag comparison ------------------------------------------------------------


def test_bags_match_normalizes_none_to_null():
    from repro.core.table import Table

    table = Table(("A",), [(1,), (NULL,), (1,)])
    assert bags_match(table, [(1,), (None,), (1,)])
    assert not bags_match(table, [(1,), (None,)])
    assert not bags_match(table, [(1,), (None,), (2,)])


# -- the runner ----------------------------------------------------------------


def test_divergence_classes_registry_is_complete():
    assert set(DIVERGENCE_CLASSES) == {
        "sqlite-no-bag-setop",
        "sqlite-no-from-column-aliases",
        "dialect-ambiguity",
        "dialect-type-order",
        "sqlite-limit",
    }


def test_runner_records_have_campaign_shape(scenario):
    runner = LiveSqliteRunner(scenario)
    codes = set()
    for seed in range(120):
        record = runner.run_trial(seed)
        assert set(record) >= {"seed", "code", "ms"}
        codes.add(record["code"])
        if record["code"] == CODE_CLASSIFIED:
            assert record["class"] in DIVERGENCE_CLASSES
        assert record["code"] != CODE_MISMATCH, record.get("detail")
    runner.close()
    assert CODE_AGREE in codes
    assert CODE_CLASSIFIED in codes  # setops appear well within 120 seeds


def test_runner_uses_semantics_leg_only_when_small():
    small = LiveSqliteRunner(library_scenario(40, seed=0))
    big = LiveSqliteRunner(library_scenario(2000, seed=0))
    try:
        assert small.use_semantics
        assert not big.use_semantics
    finally:
        small.close()
        big.close()


def test_runner_rejects_unknown_variant(scenario):
    with pytest.raises(ValueError):
        LiveSqliteRunner(scenario, variant="mysql")


def test_runner_trials_deterministic(scenario):
    a = LiveSqliteRunner(scenario)
    b = LiveSqliteRunner(scenario)
    try:
        for seed in (0, 7, 23):
            ra, rb = a.run_trial(seed), b.run_trial(seed)
            assert {k: v for k, v in ra.items() if k != "ms"} == (
                {k: v for k, v in rb.items() if k != "ms"}
            )
    finally:
        a.close()
        b.close()
