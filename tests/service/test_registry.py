"""Prepared statements, tenants, and the statement byte budget."""

import pytest

from repro.core import NULL, Database, Schema
from repro.service.registry import PreparedStatement, ServiceRegistry

SCHEMA = {"R": ("A", "B"), "T": ("C",)}
ROWS = {"R": [(1, 2), (3, NULL)], "T": [(2,)]}


def make_registry(**kwargs):
    registry = ServiceRegistry(**kwargs)
    db = Database(Schema(SCHEMA), ROWS)
    registry.tenant("t1").add_database("default", db)
    return registry, db


def test_prepare_parses_once_and_binds_per_execution():
    registry, db = make_registry()
    sid, statement = registry.prepare("t1", "SELECT R.A FROM R WHERE R.B = $1", "default")
    assert statement.param_count == 1
    engine = registry.tenant("t1").engine_for(db.schema)
    assert sorted(engine.execute(statement.bind([2]), db).bag) == [(1,)]
    assert list(engine.execute(statement.bind([99]), db).bag) == []
    # The binding memo returns the identical AST for a repeated tuple.
    assert statement.bind([2]) is statement.bind([2])


def test_unknown_database_raises_keyerror():
    registry, _db = make_registry()
    with pytest.raises(KeyError):
        registry.prepare("t1", "SELECT R.A FROM R", "nope")


def test_statement_ids_do_not_resolve_across_tenants():
    registry, db = make_registry()
    registry.tenant("t2").add_database("default", db)
    sid, _ = registry.prepare("t1", "SELECT R.A FROM R", "default")
    assert registry.lookup("t1", sid) is not None
    assert registry.lookup("t2", sid) is None
    assert registry.lookup("ghost", sid) is None


def test_engines_shared_per_schema_shape():
    """Two databases with the same schema share one engine (and therefore
    one plan cache and one build cache — the sharing surface)."""
    registry, db = make_registry()
    tenant = registry.tenant("t1")
    tenant.add_database("other", Database(Schema(SCHEMA), ROWS))
    assert tenant.engine_for(tenant.databases["default"].schema) is tenant.engine_for(
        tenant.databases["other"].schema
    )
    different = Database(Schema({"R": ("A",)}), {"R": [(1,)]})
    tenant.add_database("third", different)
    assert tenant.engine_for(different.schema) is not tenant.engine_for(db.schema)


def test_statement_budget_evicts_heaviest_tenants_lru_first():
    registry, db = make_registry()
    registry.tenant("t2").add_database("default", db)
    # Find a single statement's footprint, then budget for about three.
    _sid, probe = registry.prepare("t1", "SELECT R.A FROM R", "default")
    per = probe.bytes
    registry.max_statement_bytes = int(per * 3.5)

    ids_t1 = [
        registry.prepare("t1", f"SELECT R.A FROM R WHERE R.B = {k}", "default")[0]
        for k in range(3)
    ]
    sid_t2, _ = registry.prepare("t2", "SELECT R.A FROM R", "default")

    assert registry.statement_evictions > 0
    # Fairness: t1 (heaviest) lost its own oldest statements; t2's survived.
    assert registry.lookup("t2", sid_t2) is not None
    survivors = [sid for sid in ids_t1 if registry.lookup("t1", sid)]
    evicted = [sid for sid in ids_t1 if not registry.lookup("t1", sid)]
    assert evicted, "t1 should have evicted at least one of its statements"
    # LRU within the tenant: anything evicted is older than every survivor.
    assert all(ids_t1.index(e) < ids_t1.index(s) for e in evicted for s in survivors)
    total = sum(t.statement_bytes for t in registry.tenants.values())
    assert total <= registry.max_statement_bytes


def test_lookup_refreshes_lru_order():
    registry, _db = make_registry()
    sid_old, probe = registry.prepare("t1", "SELECT R.A FROM R", "default")
    sid_new, _ = registry.prepare("t1", "SELECT R.B FROM R", "default")
    registry.lookup("t1", sid_old)  # touch: old becomes most recent
    registry.max_statement_bytes = probe.bytes + 1
    registry._enforce_statement_budget()
    assert registry.lookup("t1", sid_old) is not None
    assert registry.lookup("t1", sid_new) is None


def test_stats_aggregates_caches_per_tenant():
    registry, db = make_registry()
    sid, statement = registry.prepare("t1", "SELECT R.A FROM R WHERE R.B = $1", "default")
    tenant = registry.tenant("t1")
    engine = tenant.engine_for(db.schema)
    engine.execute(statement.bind([2]), db)
    engine.execute(statement.bind([2]), db)
    stats = registry.stats()
    entry = stats["tenants"]["t1"]
    assert entry["statements"] == 1
    assert entry["statement_bytes"] == statement.bytes
    assert entry["plan_cache"]["hits"] >= 1  # second bind reused the plan
    assert entry["plan_cache"]["entries"] >= 1
    assert stats["statement_evictions"] == 0
    assert stats["uptime_s"] >= 0
