"""Scenarios: a schema + instance + foreign-key structure, with provenance.

Everything the validation campaigns know about a *real* database is packed
into a :class:`Scenario`: the :class:`~repro.core.schema.Schema` and
:class:`~repro.core.schema.Database` the engine and semantics consume, the
foreign-key edges the FK-biased query generator walks
(:mod:`repro.ingest.generator`), the per-column type map (``int`` /
``text`` — the repository's value domain), and a statistical profile
(row counts, NULL rates, distinct counts) that the synthesizer
(:mod:`repro.ingest.synth`) mirrors when scaling a scenario up.

Fingerprints are the metamorphic-testing contract: a table fingerprint is
the SHA-256 of the canonicalized (columns, row-multiset) pair, so it is
independent of row order and of which importer produced the table —
importing a database, exporting it and re-importing it must yield
bit-identical fingerprints (covered by ``tests/ingest/test_metamorphic.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import Null

__all__ = [
    "ForeignKey",
    "Scenario",
    "ColumnType",
    "TYPE_INT",
    "TYPE_TEXT",
    "table_fingerprint",
    "infer_column_types",
]

#: The two column types of the repository's value domain (Section 2 models
#: values as ints and strings; the paper notes the type is immaterial).
TYPE_INT = "int"
TYPE_TEXT = "text"
ColumnType = str


@dataclass(frozen=True)
class ForeignKey:
    """One FK edge: ``table(columns) -> ref_table(ref_columns)``.

    Composite keys keep their column pairing: ``columns[i]`` references
    ``ref_columns[i]``.
    """

    table: str
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns or len(self.columns) != len(self.ref_columns):
            raise ValueError(
                f"foreign key {self.table}{self.columns} -> "
                f"{self.ref_table}{self.ref_columns} must pair columns 1:1"
            )

    def to_json(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "columns": list(self.columns),
            "ref_table": self.ref_table,
            "ref_columns": list(self.ref_columns),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ForeignKey":
        return cls(
            table=str(payload["table"]),
            columns=tuple(payload["columns"]),
            ref_table=str(payload["ref_table"]),
            ref_columns=tuple(payload["ref_columns"]),
        )


def _canonical_value(value) -> str:
    if isinstance(value, Null):
        return "N"
    if isinstance(value, str):
        return "s" + value
    return "i" + str(value)


def table_fingerprint(table: Table) -> str:
    """SHA-256 of the canonical (columns, sorted row-multiset) form.

    Row order and importer provenance are irrelevant; values, columns and
    multiplicities are not.
    """
    digest = hashlib.sha256()
    digest.update("\x1f".join(str(c) for c in table.columns).encode())
    lines = [
        "\x1f".join(_canonical_value(v) for v in record) + f"\x1e{count}"
        for record, count in table.bag.counts().items()
    ]
    for line in sorted(lines):
        digest.update(b"\x1d")
        digest.update(line.encode())
    return digest.hexdigest()


def infer_column_types(db: Database) -> Dict[str, Dict[str, ColumnType]]:
    """Per-column types observed from the instance (``int`` wins ties on
    empty columns: the validation schema is conceptually integer-typed)."""
    types: Dict[str, Dict[str, ColumnType]] = {}
    for name in db.schema.table_names:
        table = db.table(name)
        observed: Dict[str, ColumnType] = {}
        for i, column in enumerate(table.columns):
            kind = TYPE_INT
            for record in table.bag.distinct():
                value = record[i]
                if isinstance(value, str):
                    kind = TYPE_TEXT
                    break
            observed[str(column)] = kind
        types[name] = observed
    return types


@dataclass(frozen=True)
class Scenario:
    """An ingested (or synthesized) database with its FK structure."""

    schema: Schema
    database: Database
    fks: Tuple[ForeignKey, ...] = ()
    #: table -> column -> "int" | "text"
    types: Mapping[str, Mapping[str, ColumnType]] = field(default_factory=dict)
    source: str = "in-memory"
    #: Importer remarks: dropped columns/tables, sampling, affinity notes.
    notes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        table_names = set(self.schema.table_names)
        for fk in self.fks:
            if fk.table not in table_names or fk.ref_table not in table_names:
                raise ValueError(f"foreign key references unknown table: {fk}")
            for col, ref in zip(fk.columns, fk.ref_columns):
                if col not in self.schema.attributes(fk.table):
                    raise ValueError(f"foreign key column {fk.table}.{col} unknown")
                if ref not in self.schema.attributes(fk.ref_table):
                    raise ValueError(
                        f"foreign key target {fk.ref_table}.{ref} unknown"
                    )
        if not self.types:
            object.__setattr__(self, "types", infer_column_types(self.database))

    # -- sizes -----------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return sum(len(self.database.table(t)) for t in self.schema.table_names)

    def column_type(self, table: str, column: str) -> ColumnType:
        return self.types.get(table, {}).get(column, TYPE_INT)

    # -- fingerprints ----------------------------------------------------------

    def table_fingerprints(self) -> Dict[str, str]:
        return {
            name: table_fingerprint(self.database.table(name))
            for name in self.schema.table_names
        }

    def fingerprint(self) -> str:
        """One digest over every table plus the FK structure.

        Table-name order is canonical (sorted), so two scenarios with the
        same tables/rows/FKs fingerprint identically regardless of
        declaration order.
        """
        digest = hashlib.sha256()
        prints = self.table_fingerprints()
        for name in sorted(prints):
            digest.update(f"{name}={prints[name]}\n".encode())
        for fk in sorted(self.fks, key=repr):
            digest.update(repr(fk.to_json()).encode())
        return digest.hexdigest()

    # -- profile ---------------------------------------------------------------

    def profile(self) -> Dict[str, object]:
        """Row counts, per-column NULL rates and distinct counts."""
        tables: Dict[str, object] = {}
        for name in self.schema.table_names:
            table = self.database.table(name)
            rows = len(table)
            columns = {}
            for i, column in enumerate(table.columns):
                nulls = 0
                distinct = set()
                for record, count in table.bag.counts().items():
                    value = record[i]
                    if isinstance(value, Null):
                        nulls += count
                    else:
                        distinct.add(value)
                columns[str(column)] = {
                    "type": self.column_type(name, str(column)),
                    "null_rate": round(nulls / rows, 4) if rows else 0.0,
                    "distinct": len(distinct),
                }
            tables[name] = {"rows": rows, "columns": columns}
        return {
            "source": self.source,
            "total_rows": self.total_rows,
            "tables": tables,
            "foreign_keys": [fk.to_json() for fk in self.fks],
            "notes": list(self.notes),
        }

    # -- value pools (for the FK-biased generator and synthesizer) -------------

    def value_pool(
        self, table: str, column: str, limit: int = 32
    ) -> Tuple[object, ...]:
        """Up to ``limit`` distinct non-NULL values of a column, in a
        deterministic (sorted-by-canonical-form) order."""
        t = self.database.table(table)
        try:
            index = t.columns.index(column)
        except ValueError:
            return ()
        values = {
            record[index]
            for record in t.bag.distinct()
            if not isinstance(record[index], Null)
        }
        ordered = sorted(values, key=_canonical_value)
        return tuple(ordered[:limit])

    def with_database(self, database: Database, source: Optional[str] = None,
                      notes: Sequence[str] = ()) -> "Scenario":
        """The same schema/FK structure over different contents."""
        return Scenario(
            schema=self.schema,
            database=database,
            fks=self.fks,
            types=self.types,
            source=source if source is not None else self.source,
            notes=tuple(notes) or self.notes,
        )
