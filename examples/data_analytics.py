"""A realistic scenario: bag semantics as data distribution.

The paper's introduction argues that bags matter beyond efficiency: "the
number of occurrences of tuples in tables reflects the actual data
distribution, and preserving this information is crucial in applications
where query answers are further processed to produce relevant data
analytics".

This example models a small click-stream: a `visits` table with one row per
page view (duplicates = popularity) and a `blocked` table of opted-out
users, some with unknown (NULL) region.  It shows how

* UNION ALL vs UNION preserves or destroys the distribution,
* NOT IN against a table with NULLs silently returns nothing, and
* the engine and the formal semantics agree on every step.

Run:  python examples/data_analytics.py
"""

from repro import Database, Engine, NULL, Schema, SqlSemantics, annotate

schema = Schema(
    {
        "visits": ("user_id", "page"),
        "archive": ("user_id", "page"),
        "blocked": ("user_id", "region"),
    }
)

db = Database(
    schema,
    {
        # one row per page view: multiplicity IS the signal
        "visits": [
            (1, "home"),
            (1, "home"),
            (1, "pricing"),
            (2, "home"),
            (3, "docs"),
            (3, "docs"),
            (3, "docs"),
        ],
        "archive": [(1, "home"), (2, "blog"), (2, "blog")],
        "blocked": [(2, "eu"), (4, NULL)],
    },
)

semantics = SqlSemantics(schema)
engine = Engine(schema, "postgres")


def run(title, text):
    query = annotate(text, schema)
    result = semantics.run(query, db)
    cross_check = engine.execute(query, db)
    assert result.same_as(cross_check), "semantics and engine disagree!"
    print(f"\n-- {title}\n   {text}")
    print(result.pretty())
    return result


# 1. The full traffic distribution across current + archived logs:
all_views = run(
    "traffic distribution (UNION ALL keeps multiplicities)",
    "SELECT visits.page FROM visits UNION ALL SELECT archive.page FROM archive",
)

deduped = run(
    "page catalogue (UNION collapses the distribution)",
    "SELECT visits.page FROM visits UNION SELECT archive.page FROM archive",
)
assert len(all_views) == 10 and len(deduped) == 4

# 2. Views by non-blocked users — the NOT IN trap: blocked contains a NULL
#    user_id?  No — but watch what happens if we filter by region list that
#    contains NULL:
run(
    "views by users not blocked (NOT IN over user ids — safe, no NULL ids)",
    "SELECT visits.user_id, visits.page FROM visits "
    "WHERE visits.user_id NOT IN (SELECT blocked.user_id FROM blocked)",
)

trap = run(
    "pages of users whose region is not on the block list (NOT IN trap!)",
    "SELECT visits.page FROM visits, blocked "
    "WHERE visits.user_id = blocked.user_id AND "
    "blocked.region NOT IN (SELECT b2.region FROM blocked AS b2)",
)
assert trap.is_empty()

# 3. The correct rewriting with explicit NULL handling:
run(
    "same question, NULL-aware (IS NOT NULL guard)",
    "SELECT visits.page FROM visits, blocked "
    "WHERE visits.user_id = blocked.user_id AND blocked.region IS NOT NULL "
    "AND blocked.region NOT IN "
    "(SELECT b2.region FROM blocked AS b2 WHERE b2.region IS NOT NULL "
    " AND b2.user_id <> blocked.user_id)",
)

print(
    "\nThe NOT IN query over a column containing NULL returned the empty\n"
    "table — not because no user qualifies, but because every comparison\n"
    "with the NULL region is unknown.  The formal semantics predicts (and\n"
    "the engine confirms) exactly this behaviour."
)
