"""Service-bench workloads: the default statement set, and scenario-derived
ones.

``scripts/bench.py``'s service stage drives the always-on query service with
a workload — a list of ``(sql, bindings)`` pairs where ``sql`` may contain
``$n`` placeholders and ``bindings`` enumerates parameter vectors to cycle
through.  Historically that list was a module-level constant hardcoding the
R/S/T/U schema; the load-generator child process (spawned, so it re-imports
the bench module) read the global, which made it impossible for an ingested
schema to drive the bench.  The builders live here now, and the workload is
passed *explicitly* to the load generator.

:func:`default_service_workload` reproduces the historical statement set
byte-for-byte (pinned by ``tests/service/test_workload_builder.py``);
:func:`build_service_workload` derives an equivalent plan-heavy workload
from any ingested :class:`~repro.ingest.scenario.Scenario` by walking its
FK edges.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.schema import Database, Schema
from ..core.values import NULL
from .scenario import Scenario

__all__ = [
    "Workload",
    "default_service_workload",
    "default_service_database",
    "build_service_workload",
]

#: ``[(sql, [params, ...]), ...]`` — the shape the service bench consumes.
Workload = List[Tuple[str, List[list]]]


def default_service_workload() -> Workload:
    """The historical R/S/T/U sustained-QPS workload.

    Plan-heavy shapes prepared statements exist for: multi-join queries
    (Selinger ordering runs at plan time) with parameters, plus statement
    pairs sharing subplan shapes (IN-probe sets, hash-join build sides) so a
    warm service exhibits cross-query build-cache hits.
    """
    return [
        (
            "SELECT R.A FROM R, S, T, U WHERE R.A = S.A AND S.C = T.C "
            "AND U.C = T.C AND R.B = U.B AND R.A = $1",
            [[0], [2], [4], [999]],
        ),
        (
            "SELECT R.B FROM R, S, T, U WHERE R.A = S.A AND S.C = T.C "
            "AND U.C = T.C AND R.B = U.B",
            [[]],
        ),
        (
            "SELECT R.A FROM R, S, U WHERE R.A = S.A AND R.B = U.B "
            "AND S.C = U.C AND R.B IN (SELECT T.C FROM T)",
            [[]],
        ),
        (
            "SELECT R.B FROM R, S, U WHERE R.A = S.A AND R.B = U.B "
            "AND S.C = U.C AND R.B IN (SELECT T.C FROM T)",
            [[]],
        ),
        (
            "SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.C = T.C AND EXISTS "
            "(SELECT U.B FROM U WHERE U.B = R.B) AND R.B = $1",
            [[0], [2]],
        ),
        (
            "SELECT U.B FROM U, T WHERE U.C = T.C "
            "AND U.B IN (SELECT R.B FROM R WHERE R.A = $1)",
            [[0], [2], [6]],
        ),
    ]


def default_service_database(rows: int) -> Database:
    """The R/S/T/U instance the default workload runs over."""
    schema = Schema(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("C",), "U": ("B", "C")}
    )
    tables = {
        "R": [(i, (i * 3) % 7 if i % 11 else NULL) for i in range(rows)],
        "S": [(i * 2, i) for i in range(rows // 2)],
        "T": [((i * 5) % 9,) for i in range(rows // 3)] + [(NULL,)],
        "U": [((i * 3) % 7, (i * 5) % 9) for i in range(rows // 2)],
    }
    return Database(schema, tables)


def _ident(name: str) -> str:
    """Quote an identifier unless it is a plain lower-risk word (mirrors the
    printer's rule: the service parses this SQL with the repo's parser)."""
    from ..sql.printer import _ident as printer_ident

    return printer_ident(name)


def build_service_workload(
    scenario: Scenario, max_statements: int = 6
) -> Workload:
    """Derive a service workload from an ingested scenario's FK edges.

    Each FK edge yields up to three statements: a child-parent join filtered
    by a parameter on the parent's referenced column (bindings sampled
    deterministically from the column's value pool — the plan-heavy shape),
    plus a *pair* of IN-probe statements that embed the identical
    ``IN (SELECT parent.ref FROM parent)`` subquery while projecting
    different columns.  The pair shares one materialized probe set across
    two distinct prepared statements, preserving the cross-query build-cache
    hits the service bench gates on.  Scenarios without FKs degrade to
    per-table parameterized scans.
    """
    statements: Workload = []
    for fk in scenario.fks:
        if len(statements) >= max_statements:
            break
        child, parent = fk.table, fk.ref_table
        join = " AND ".join(
            f"T1.{_ident(c)} = T2.{_ident(r)}"
            for c, r in zip(fk.columns, fk.ref_columns)
        )
        attrs = scenario.schema.attributes(child)
        out_col = attrs[0]
        pool = scenario.value_pool(parent, fk.ref_columns[0], limit=3)
        if pool:
            statements.append(
                (
                    f"SELECT T1.{_ident(out_col)} FROM {_ident(child)} AS T1, "
                    f"{_ident(parent)} AS T2 WHERE {join} "
                    f"AND T2.{_ident(fk.ref_columns[0])} = $1",
                    [[value] for value in pool],
                )
            )
        probe = (
            f"IN (SELECT T2.{_ident(fk.ref_columns[0])} "
            f"FROM {_ident(parent)} AS T2)"
        )
        for column in dict.fromkeys((attrs[0], attrs[-1])):
            if len(statements) >= max_statements:
                break
            statements.append(
                (
                    f"SELECT T1.{_ident(column)} FROM {_ident(child)} AS T1 "
                    f"WHERE T1.{_ident(fk.columns[0])} {probe}",
                    [[]],
                )
            )
    if not statements:
        for name in scenario.schema.table_names:
            if len(statements) >= max_statements:
                break
            column = scenario.schema.attributes(name)[0]
            pool = scenario.value_pool(name, column, limit=3)
            sql = f"SELECT T1.{_ident(column)} FROM {_ident(name)} AS T1"
            if pool:
                sql += f" WHERE T1.{_ident(column)} = $1"
                statements.append((sql, [[value] for value in pool]))
            else:
                statements.append((sql, [[]]))
    return statements
