"""The validation campaign: the paper's headline experiment at small scale."""

import pytest

from repro.core import NULL, Database, Schema
from repro.generator import DataFillerConfig, GeneratorConfig
from repro.sql import annotate
from repro.validation import ValidationRunner, format_campaigns, format_table


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        ValidationRunner(variant="mysql")


@pytest.mark.parametrize("variant", ["postgres", "oracle"])
def test_small_campaign_fully_agrees(variant):
    """The reproduction of the paper's result: full agreement."""
    runner = ValidationRunner(
        variant=variant, data_config=DataFillerConfig(max_rows=4)
    )
    report = runner.run(trials=40, base_seed=12345)
    assert report.trials == 40
    assert report.agreements == 40
    assert not report.mismatches
    assert report.agreement_rate == 1.0


def test_oracle_campaign_sees_error_agreements():
    """With enough trials, some queries hit the ambiguity class and both
    sides error — counted as agreement, as in the paper."""
    runner = ValidationRunner(variant="oracle", data_config=DataFillerConfig(max_rows=3))
    report = runner.run(trials=150, base_seed=0)
    assert report.agreements == report.trials
    assert report.error_agreements > 0


def test_compare_on_fixed_query():
    schema = Schema({"R": ("A",), "S": ("A",)})
    runner = ValidationRunner(schema=schema, variant="postgres")
    db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    q = annotate("SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema)
    result = runner.compare(q, db)
    assert result.agreed
    assert result.semantics.table.is_empty()


def test_explain_mentions_query():
    schema = Schema({"R": ("A",)})
    runner = ValidationRunner(schema=schema, variant="postgres")
    db = Database(schema, {"R": [(1,)]})
    q = annotate("SELECT R.A FROM R", schema)
    result = runner.compare(q, db, seed=9)
    text = runner.explain(result)
    assert "seed 9" in text
    assert "SELECT" in text


def test_report_summary_format():
    runner = ValidationRunner(data_config=DataFillerConfig(max_rows=2))
    report = runner.run(trials=5)
    summary = report.summary()
    assert "trials=5" in summary
    assert "rate=" in summary


def test_format_table_and_campaigns():
    runner = ValidationRunner(data_config=DataFillerConfig(max_rows=2))
    report = runner.run(trials=3)
    rendered = format_campaigns([report])
    assert "postgres" in rendered
    assert "100.0000%" in rendered
    table_text = format_table(("x", "y"), [(1, "ab"), (2, "c")])
    assert "| x" in table_text and "| ab" in table_text


def test_trial_result_is_reproducible():
    runner = ValidationRunner(data_config=DataFillerConfig(max_rows=3))
    a = runner.run_trial(77)
    b = runner.run_trial(77)
    assert a.query == b.query
    assert a.agreed and b.agreed
