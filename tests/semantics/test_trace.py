"""The derivation tracer: a drop-in evaluator that records rule applications."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import AmbiguousReferenceError
from repro.semantics import SqlSemantics
from repro.semantics.trace import TraceNode, TracingSemantics, format_trace
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})


def test_tracer_is_a_drop_in_evaluator(schema, db):
    q = annotate(
        "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema
    )
    plain = SqlSemantics(schema).run(q, db)
    traced = TracingSemantics(schema)
    assert traced.run(q, db).same_as(plain)


def test_trace_records_root_query(schema, db):
    sem = TracingSemantics(schema)
    q = annotate("SELECT R.A FROM R", schema)
    sem.run(q, db)
    assert sem.trace is not None
    assert sem.trace.kind == "query"
    assert "SELECT R.A AS A" in sem.trace.description
    assert "(x=0)" in sem.trace.description


def test_trace_contains_condition_applications(schema, db):
    sem = TracingSemantics(schema)
    q = annotate("SELECT R.A FROM R WHERE R.A = 1", schema)
    sem.run(q, db)

    def collect(node):
        yield node
        for child in node.children:
            yield from collect(child)

    nodes = list(collect(sem.trace))
    condition_nodes = [n for n in nodes if n.kind == "condition"]
    # one application per product row (2 rows in R)
    assert len(condition_nodes) == 2
    results = sorted(n.result for n in condition_nodes)
    assert results == ["t", "u"]  # 1 = 1 is t; NULL = 1 is u


def test_trace_shows_environments(schema, db):
    sem = TracingSemantics(schema)
    q = annotate("SELECT R.A FROM R WHERE R.A = 1", schema)
    sem.run(q, db)
    condition = sem.trace.children[0]
    assert "R.A=" in condition.environment


def test_trace_nested_subqueries(schema, db):
    sem = TracingSemantics(schema)
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
    )
    sem.run(q, db)
    text = format_trace(sem.trace)
    # the EXISTS subquery appears with the switch set
    assert "(x=1)" in text
    # correlated comparisons appear with their environments
    assert "S.A = R.A" in text


def test_trace_records_errors(schema, db):
    sem = TracingSemantics(schema)
    q = annotate("SELECT T.A AS X FROM (SELECT R.A, R.A FROM R) AS T", schema)
    with pytest.raises(AmbiguousReferenceError):
        sem.run(q, db)
    text = format_trace(sem.trace)
    assert "error: AmbiguousReferenceError" in text


def test_format_trace_structure(schema, db):
    sem = TracingSemantics(schema)
    q = annotate("SELECT R.A FROM R WHERE TRUE AND TRUE", schema)
    sem.run(q, db)
    text = format_trace(sem.trace)
    lines = text.splitlines()
    assert lines[0].startswith("⟦")
    assert lines[-1].strip().startswith("=")
    assert any(line.startswith("    ") for line in lines)  # nesting


def test_format_trace_none():
    assert "no trace" in format_trace(None)


def test_result_truncation(schema):
    db = Database(schema, {"R": [(i,) for i in range(20)]})
    sem = TracingSemantics(schema, max_result_rows=3)
    q = annotate("SELECT R.A FROM R", schema)
    sem.run(q, db)
    assert "…" in sem.trace.result


def test_consecutive_runs_replace_trace(schema, db):
    sem = TracingSemantics(schema)
    q1 = annotate("SELECT R.A FROM R", schema)
    q2 = annotate("SELECT S.A FROM S", schema)
    sem.run(q1, db)
    first = sem.trace
    sem.run(q2, db)
    assert sem.trace is not first
    assert "S.A" in sem.trace.description
