"""Tables: a bag of records together with an ordered tuple of column labels.

A table of arity k > 0 is a bag of records of length k (Section 2).  The
column labels are *not* part of the bag itself; they are computed by the
ℓ(·) function of Figure 3 and carried alongside so that query outputs can be
compared by the correctness criterion of Section 4: same number of columns,
same names in the same order, same rows with the same multiplicities.

Labels are plain :data:`~repro.core.values.Name` strings for base tables and
query outputs; the intermediate product built by a FROM clause is labelled by
:class:`~repro.core.values.FullName` pairs (``ℓ(τ:β)``).  Labels *may repeat*
— e.g. ``SELECT R.A, R.A FROM R`` — which is precisely the subtlety Example 2
turns on, so no uniqueness is enforced here.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from .bag import Bag
from .values import FullName, Name, Record

__all__ = ["Table", "Label"]

#: A column label: a name for base tables and outputs, a full name inside FROM.
Label = Union[Name, FullName]


class Table:
    """An immutable labelled bag of records.

    ``columns`` and the bag arity must agree (unless the bag is empty, in
    which case the declared columns fix the arity).
    """

    __slots__ = ("_columns", "_bag", "_scan_rows", "_scan_cols", "_scan_fp")

    def __init__(self, columns: Sequence[Label], rows: Union[Bag, Iterable[Record]]):
        columns = tuple(columns)
        if not columns:
            raise ValueError("a table must have at least one column (arity k > 0)")
        bag = rows if isinstance(rows, Bag) else Bag(rows)
        if bag.arity is not None and bag.arity != len(columns):
            raise ValueError(
                f"table declared {len(columns)} columns but rows have arity {bag.arity}"
            )
        self._columns = columns
        self._bag = bag
        #: Engine-side memos (see repro.engine.binding.bind_plan): the rows
        #: converted to the executor's value domain, and their transposition
        #: into column vectors for the columnar tier.  Pure functions of the
        #: immutable bag, computed lazily, excluded from eq/hash.
        self._scan_rows = None
        self._scan_cols = None
        #: Build-cache content fingerprint over ``_scan_rows`` (same memo
        #: contract: lazy, content-pure, dies with the table).
        self._scan_fp = None

    @property
    def columns(self) -> Tuple[Label, ...]:
        return self._columns

    @property
    def bag(self) -> Bag:
        return self._bag

    @property
    def arity(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return len(self._bag)

    def __iter__(self):
        return iter(self._bag)

    def is_empty(self) -> bool:
        return self._bag.is_empty()

    def multiplicity(self, record: Record) -> int:
        return self._bag.multiplicity(record)

    def with_columns(self, columns: Sequence[Label]) -> "Table":
        """The same rows under different labels (renaming / relabelling)."""
        return Table(columns, self._bag)

    def distinct(self) -> "Table":
        """Duplicate elimination ε applied to the rows."""
        return Table(self._columns, self._bag.distinct_bag())

    # -- comparison ------------------------------------------------------------

    def same_as(self, other: "Table") -> bool:
        """The paper's correctness criterion (Section 4).

        True iff both tables have precisely the same columns (names, order)
        and precisely the same rows with the same multiplicities; row order
        is irrelevant by construction.
        """
        return self._columns == other._columns and self._bag == other._bag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.same_as(other)

    def __hash__(self) -> int:
        return hash((self._columns, self._bag))

    # -- display ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Table(columns={self._columns!r}, rows={len(self._bag)})"

    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width rendering for examples and reports."""
        headers = [str(label) for label in self._columns]
        rows = []
        for i, record in enumerate(self._bag):
            if i >= max_rows:
                break
            rows.append([repr(v) if isinstance(v, str) else str(v) for v in record])
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        line = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out = [line]
        out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
        out.append(line)
        for row in rows:
            out.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        out.append(line)
        remaining = len(self._bag) - len(rows)
        if remaining > 0:
            out.append(f"... {remaining} more row(s)")
        return "\n".join(out)
