"""The output-attribute function ℓ of Figure 3.

``ℓ(Q)`` is the tuple of column names of the table a query produces:

* ``ℓ(R)`` — the attribute tuple the schema assigns to base table R;
* ``ℓ(τ) = ℓ(T1) ⋯ ℓ(Tk)`` — concatenation over the FROM items;
* ``ℓ(SELECT [DISTINCT] α : β′ …) = β′``;
* ``ℓ(SELECT [DISTINCT] * FROM τ : β …) = ℓ(τ)``;
* ``ℓ(Q1 op Q2) = ℓ(Q1)``.

The scoped variant ``ℓ(τ : β) = N1.ℓ(T1) ⋯ Nk.ℓ(Tk)`` produces the *full
names* that a FROM clause binds (Section 3's "Scopes and bindings"); it is
what the environment update ``η ⊕r̄ ℓ(τ:β)`` consumes.

A FROM item with column aliases ``T AS N(A1, …, An)`` contributes
``(A1, …, An)`` in place of ℓ(T); the arity must match.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.errors import ArityMismatchError
from ..core.schema import Schema
from ..core.values import FullName, Name
from .ast import FromItem, Query, Select, SetOp

__all__ = [
    "query_labels",
    "from_item_labels",
    "from_labels",
    "scope_full_names",
    "prefix_names",
]


def prefix_names(qualifier: Name, names: Sequence[Name]) -> Tuple[FullName, ...]:
    """The operation ``N.(N1, …, Nn) = (N.N1, …, N.Nn)``."""
    return tuple(FullName(qualifier, name) for name in names)


def from_item_labels(item: FromItem, schema: Schema) -> Tuple[Name, ...]:
    """ℓ(T) for one FROM item, applying column aliases when present."""
    if item.is_base_table:
        labels = schema.attributes(item.table)
    else:
        labels = query_labels(item.table, schema)
    if item.column_aliases is not None:
        if len(item.column_aliases) != len(labels):
            raise ArityMismatchError(
                f"alias {item.alias}({', '.join(item.column_aliases)}) renames "
                f"{len(item.column_aliases)} columns but the table has {len(labels)}"
            )
        labels = item.column_aliases
    return labels


def from_labels(from_items: Sequence[FromItem], schema: Schema) -> Tuple[Name, ...]:
    """ℓ(τ): the concatenation of the labels of all FROM items."""
    labels: list[Name] = []
    for item in from_items:
        labels.extend(from_item_labels(item, schema))
    return tuple(labels)


def scope_full_names(
    from_items: Sequence[FromItem], schema: Schema
) -> Tuple[FullName, ...]:
    """ℓ(τ : β): each item's labels prefixed with its alias."""
    names: list[FullName] = []
    for item in from_items:
        names.extend(prefix_names(item.alias, from_item_labels(item, schema)))
    return tuple(names)


def query_labels(query: Query, schema: Schema) -> Tuple[Name, ...]:
    """ℓ(Q) per Figure 3."""
    if isinstance(query, Select):
        if query.is_star:
            return from_labels(query.from_items, schema)
        return tuple(item.alias for item in query.items)
    if isinstance(query, SetOp):
        return query_labels(query.left, schema)
    raise TypeError(f"not a query: {query!r}")
