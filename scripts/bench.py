#!/usr/bin/env python
"""Standalone throughput benchmarks: engine stages + campaign throughput.

Runs the pipeline-stage workloads of ``benchmarks/test_bench_throughput.py``
without pytest and writes machine-readable JSON so the performance
trajectory is tracked across PRs::

    PYTHONPATH=src python scripts/bench.py [--rounds N] [--stages a,b,...]

Engine stages (written to ``BENCH_engine.json``)
------------------------------------------------
* ``query_generation``      — one random query (PAPER_CONFIG)
* ``parse_print_roundtrip`` — parse+print of 50 pregenerated query texts
* ``semantics_eval``        — formal semantics, cost-dispatched fast path.
  The interleaved FROM/WHERE route pays a fixed staging overhead that only
  amortizes on larger products; the dispatch (threshold
  ``interleave_min_product=32``, plus a zero-cost shortcut for single-item
  FROMs, which can never stage) keeps the fast path within noise of
  ``semantics_eval_naive`` at this stage's deliberate 5-row scale and
  ~2.2x ahead by 12-row tables.  Both routes are bit-identical, so this is
  purely a cost trade-off — and it is *gated*: the script exits non-zero
  when ``semantics_eval > semantics_eval_naive * 1.05`` (the recorded
  ``semantics_ratio``), so the dispatch can never quietly regress below
  the literal route again.
* ``semantics_eval_naive``  — formal semantics, ``fast_from=False``
* ``engine_optimized``      — reference engine, default optimizer
* ``engine_naive``          — reference engine, ``optimize=False``
* ``engine_compiled``       — closure-compiled execution (the default
  engine), plan cache hot: compile once, execute many
* ``engine_interpreted``    — same optimized plans, ``compiled=False``
  (the interpreted operator tree; the pair's digest equality and
  ``compiled_speedup`` are recorded, and a mismatch fails the run)
* ``engine_vectorized``     — columnar batch execution
  (``vectorized=True``) on the selection-heavy workload, sized by
  ``--rows`` (default: the paper's 50-row cap; pass ``--rows 5000`` for
  the scale where the batch win shows)
* ``engine_rowwise``        — the same workload through the row-wise
  closure tier (the pair's ``vectorized_speedup`` is recorded; a
  four-way digest gate — vectorized vs compiled vs interpreted vs naive
  — runs at the 50-row cap, where the naive product engine is feasible,
  plus a vectorized-vs-rowwise check at ``--rows`` scale, and any
  mismatch fails the run)
* ``engine_wcoj``           — worst-case-optimal multiway joins
  (``GenericJoin``) on the cyclic triangle/4-cycle workload, sized by
  ``--rows``
* ``engine_binary``         — same workload, ``wcoj=False`` (DP-ordered
  binary hash joins; the pair's ``wcoj_speedup`` is recorded, and a
  three-way digest gate — wcoj vs binary vs naive — runs at the 50-row
  cap plus a wcoj-vs-binary check at ``--rows`` scale)
* ``engine_join_order``     — adversarial-FROM-order workload, cost-based
  join ordering (second-generation optimizer)
* ``engine_join_order_fromorder`` — same workload, ordering ablated
  (``reorder_joins=False``: PR 1's syntactic left-deep order)
* ``engine_setops``         — set-operation workload, streaming hash
  UNION/INTERSECT/EXCEPT
* ``engine_setops_counted`` — same workload, ``hash_setops=False`` (the
  counted-multiset SetOpNode)
* ``engine_repeat_cached``  — 10 queries x 15 databases, plan cache on
  (prepared-statement-style reuse; hit/miss counters are recorded)
* ``engine_repeat_uncached``— same workload, ``plan_cache_size=0``
* ``engine_repeat_shared``  — 10 queries x (5 databases x 3 repeats):
  repeated content, cross-trial build-side sharing on
* ``engine_repeat_unshared``— same workload, ``build_cache_size=0``
* ``theorem1_translation``  — SQL → SQL-RA → pure RA desugaring

The join-order, set-op and compiled ablation pairs additionally verify
that every engine variant (including ``optimize=False``) produces
identical outcomes on their workloads; a digest mismatch makes the script
exit non-zero, so CI can gate on optimizer *and compiler* correctness
with ``--rounds 1``.  The join-order/set-op pairs run with the build-side
cache off: they measure the operators, and sharing would absorb exactly
the work being compared on a repeated timing loop.

Campaign stage (written to ``BENCH_campaign.json``)
---------------------------------------------------
``campaign`` runs a Section 4 validation campaign serially and with
``--campaign-jobs`` worker processes on the unified subsystem
(:mod:`repro.campaigns`) and records trials/sec for both legs, per-trial
latency percentiles (p50/p95/p99), the parallel speedup, and that the two
outcome digests are identical.  On a single-core container the parallel
leg can only measure worker-process overhead, so it is skipped and marked
``"skipped"`` in the record; the point of the speedup is the trajectory
on real hardware.  The stage also runs a paired engine-tier A/B (interpreted
single-use plans — the shipped configuration — vs the columnar tier on
the same trial stream, recorded as ``engine_tier_ab``) and exits non-zero
if the shipped tier is more than 5% slower than the alternative.

Distributed stage (merged into ``BENCH_campaign.json``)
--------------------------------------------------------
``distributed`` splits one validation campaign across
``--distributed-workers`` real ``repro work`` subprocesses (file-based
mode, one lease each, coordinated by
:class:`repro.campaigns.FileCoordinator`), merges their checkpoints, and
asserts the merged ``outcome_digest`` is bit-identical to the same
campaign run serially in-process.  A mismatch (or a failed worker) makes
the script exit non-zero, so CI gates on the distributed path with
``--stages distributed``.

Chaos stage (written to ``BENCH_chaos.json``)
---------------------------------------------
``chaos`` replays deterministic fault schedules (seeded ``FaultPlan``,
``--chaos-seed``) against the stack: an HTTP-distributed campaign under
worker crashes / duplicate submits / dropped connections / torn
checkpoint writes with a live coordinator bounce (gate: merged digest
bit-identical to a fault-free serial run), a poison-lease quarantine
drill, checkpoint-corruption detection (interior bit flip caught by the
per-line CRC with its line number; torn final line tolerated), and a
concurrent service workload under injected execution faults (gate: zero
silently wrong answers, the execution-tier fallback exercised).

``--stages`` selects a comma-separated subset (default: every stage), so
CI can run the cheap stages only, e.g.::

    python scripts/bench.py --stages engine_join_order,engine_setops \\
        --rounds 1

The engine stages run at the paper's 50-row table cap (the scale the naive
implementation could not handle); the semantics stages run at 5 rows, as the
oracle is intentionally product-shaped.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import multiprocessing
import statistics
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT))

# The workloads are the ones the pytest benchmark suite defines, imported so
# BENCH_engine.json always measures exactly what the benches measure.
from benchmarks.test_bench_throughput import (  # noqa: E402
    ADVERSARIAL_SCHEMA,
    SCHEMA,
    VEC_SCHEMA,
    WCOJ_SCHEMA,
    engine_pairs,
    join_order_pairs,
    make_db,
    make_query,
    run_workload,
    setop_pairs,
    vectorized_pairs,
    wcoj_pairs,
)
from repro.algebra import desugar, to_sqlra  # noqa: E402
from repro.campaigns import CampaignSpec, run_campaign  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.generator import DM_CONFIG, QueryGenerator  # noqa: E402
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics  # noqa: E402
from repro.sql import parse_query, print_query  # noqa: E402

CAMPAIGN_STAGE = "campaign"
DISTRIBUTED_STAGE = "distributed"
SERVICE_STAGE = "service"
INGEST_STAGE = "ingest"
CHAOS_STAGE = "chaos"


def run_semantics(semantics, pairs):
    for query, db in pairs:
        try:
            semantics.run(query, db)
        except Exception:
            pass


def median_ns(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        times.append(time.perf_counter_ns() - start)
    return int(statistics.median(times))


def paired_ratio(fast_fn, slow_fn, rounds):
    """``min(fast) / min(slow)`` from strictly alternating runs.

    Used for the *gated* semantics ratio: the two legs are only a few
    milliseconds each, so scheduler noise alone can move per-leg medians
    by more than the gate's margin.  Interleaving exposes both legs to
    the same noise, and the per-leg *minimum* (noise only ever adds
    time — the same reasoning as ``timeit``) estimates the true cost far
    more tightly than the median at this scale.
    """
    fast_times, slow_times = [], []
    # GC pauses land on whichever leg happens to trip the threshold and
    # scale with the whole process heap, not with the code under test —
    # exclude them (pyperf does the same).
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter_ns()
            fast_fn()
            fast_times.append(time.perf_counter_ns() - start)
            start = time.perf_counter_ns()
            slow_fn()
            slow_times.append(time.perf_counter_ns() - start)
    finally:
        gc.enable()
        gc.unfreeze()
    return min(fast_times) / min(slow_times)


def outcome_digest(engine, pairs):
    """SHA-256 over the canonicalized outcome of every (query, db) pair."""
    digest = hashlib.sha256()
    for query, db in pairs:
        try:
            table = engine.execute(query, db)
        except Exception as exc:
            payload = f"error:{type(exc).__name__}"
        else:
            # Outside the try block: an attribute typo here must crash the
            # gate, not masquerade as a per-pair engine error (digests built
            # from identical error strings match vacuously).
            counts = sorted(table.bag.counts().items(), key=repr)
            payload = repr((tuple(table.columns), counts))
        digest.update(payload.encode())
    return digest.hexdigest()


#: Engine-stage names, in run order (``campaign`` is handled separately).
ENGINE_STAGES = (
    "query_generation",
    "parse_print_roundtrip",
    "semantics_eval",
    "semantics_eval_naive",
    "engine_optimized",
    "engine_naive",
    "engine_compiled",
    "engine_interpreted",
    "engine_vectorized",
    "engine_rowwise",
    "engine_wcoj",
    "engine_binary",
    "engine_join_order",
    "engine_join_order_fromorder",
    "engine_setops",
    "engine_setops_counted",
    "engine_repeat_cached",
    "engine_repeat_uncached",
    "engine_repeat_shared",
    "engine_repeat_unshared",
    "theorem1_translation",
)


def build_stages(selected, rows=50):
    """Stage-name → workload thunks plus the shared context (engines and
    workloads the reporting needs), building only what ``selected`` stages
    require (pregenerating the 50-row engine pairs costs seconds, which a
    --stages run selecting cheap stages should not pay).  ``rows`` sizes
    the columnar-workload tables (``engine_vectorized``/``engine_rowwise``
    only; every other stage keeps its fixed scale)."""

    def need(*names):
        return any(name in selected for name in names)

    stages = {}
    context = {}
    if need("query_generation"):
        gen = QueryGenerator(SCHEMA)
        counter = iter(range(10_000_000))
        stages["query_generation"] = lambda: gen.generate(seed=next(counter))
    if need("parse_print_roundtrip"):
        texts = [print_query(make_query(seed)) for seed in range(50)]
        stages["parse_print_roundtrip"] = lambda: [
            print_query(parse_query(text)) for text in texts
        ]
    if need("semantics_eval", "semantics_eval_naive"):
        small_pairs = [(make_query(s), make_db(s)) for s in range(20)]
        sem_fast = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
        sem_naive = SqlSemantics(
            SCHEMA, star_style=STAR_COMPOSITIONAL, fast_from=False
        )
        stages["semantics_eval"] = lambda: run_semantics(sem_fast, small_pairs)
        stages["semantics_eval_naive"] = lambda: run_semantics(
            sem_naive, small_pairs
        )
    if need(
        "engine_optimized", "engine_naive", "engine_compiled", "engine_interpreted"
    ):
        # One 50-row workload shared by both engine groups: pregenerating
        # it costs seconds and the pairs are never mutated.
        paper_pairs = engine_pairs()
    if need("engine_optimized", "engine_naive"):
        stages["engine_optimized"] = lambda: run_workload(
            Engine(SCHEMA, "postgres"), paper_pairs
        )
        stages["engine_naive"] = lambda: run_workload(
            Engine(SCHEMA, "postgres", optimize=False), paper_pairs
        )
    if need("engine_compiled", "engine_interpreted"):
        # Compiled-execution workload: the paper-scale pairs, with the
        # plan cache on — the compiler hooks in at cache admission, so
        # after the warm-up pass both engines execute cached plans and the
        # pair isolates closure execution vs interpreted dispatch.
        compiled_pairs = paper_pairs
        compiled_engine = Engine(SCHEMA, "postgres")
        interpreted_engine = Engine(SCHEMA, "postgres", compiled=False)
        context["compiled"] = (
            compiled_pairs,
            [
                ("optimized", compiled_engine),
                ("ablated", interpreted_engine),
                ("naive", Engine(SCHEMA, "postgres", optimize=False, compiled=False)),
            ],
        )
        stages["engine_compiled"] = lambda: run_workload(
            compiled_engine, compiled_pairs
        )
        stages["engine_interpreted"] = lambda: run_workload(
            interpreted_engine, compiled_pairs
        )
    if need("engine_join_order", "engine_join_order_fromorder"):
        join_pairs = join_order_pairs()
        join_full = Engine(ADVERSARIAL_SCHEMA, "postgres", build_cache_size=0)
        join_ablated = Engine(
            ADVERSARIAL_SCHEMA,
            "postgres",
            build_cache_size=0,
            optimizer_options={"reorder_joins": False},
        )
        context["join_order"] = (
            join_pairs,
            [
                ("optimized", join_full),
                ("ablated", join_ablated),
                ("naive", Engine(ADVERSARIAL_SCHEMA, "postgres", optimize=False)),
            ],
        )
        stages["engine_join_order"] = lambda: run_workload(join_full, join_pairs)
        stages["engine_join_order_fromorder"] = lambda: run_workload(
            join_ablated, join_pairs
        )
    if need("engine_setops", "engine_setops_counted"):
        so_pairs = setop_pairs()
        setops_full = Engine(ADVERSARIAL_SCHEMA, "postgres", build_cache_size=0)
        setops_ablated = Engine(
            ADVERSARIAL_SCHEMA,
            "postgres",
            build_cache_size=0,
            optimizer_options={"hash_setops": False},
        )
        context["setops"] = (
            so_pairs,
            [
                ("optimized", setops_full),
                ("ablated", setops_ablated),
                ("naive", Engine(ADVERSARIAL_SCHEMA, "postgres", optimize=False)),
            ],
        )
        stages["engine_setops"] = lambda: run_workload(setops_full, so_pairs)
        stages["engine_setops_counted"] = lambda: run_workload(
            setops_ablated, so_pairs
        )
    if need("engine_vectorized", "engine_rowwise"):
        # Columnar-execution workload, sized by --rows.  Plan caches are
        # on, so after warm-up the pair isolates batch execution against
        # the closure-compiled row-wise tier on identical cached plans.
        vec_pairs = vectorized_pairs(rows=rows)
        vectorized_engine = Engine(VEC_SCHEMA, "postgres", vectorized=True)
        rowwise_engine = Engine(VEC_SCHEMA, "postgres")
        # The four-way digest gate includes the naive engine, whose
        # product-shaped join plans cannot handle thousands of rows — the
        # gate workload stays at the 50-row paper cap; only the two batch
        # tiers are digest-checked again at --rows scale (the
        # ``vectorized_scale`` group below).
        gate_pairs = vec_pairs if rows <= 50 else vectorized_pairs(rows=50)
        context["vectorized"] = (
            gate_pairs,
            [
                ("vectorized", vectorized_engine),
                ("compiled", rowwise_engine),
                ("interpreted", Engine(VEC_SCHEMA, "postgres", compiled=False)),
                ("naive", Engine(VEC_SCHEMA, "postgres", optimize=False)),
            ],
        )
        if rows > 50:
            context["vectorized_scale"] = (
                vec_pairs,
                [
                    ("vectorized", vectorized_engine),
                    ("rowwise", rowwise_engine),
                ],
            )
        stages["engine_vectorized"] = lambda: run_workload(
            vectorized_engine, vec_pairs
        )
        stages["engine_rowwise"] = lambda: run_workload(rowwise_engine, vec_pairs)
    if need("engine_wcoj", "engine_binary"):
        # Cyclic-join workload, sized by --rows.  Plan caches are on, so
        # after warm-up the pair isolates the multiway trie intersection
        # against DP-ordered binary hash joins on identical inputs.
        cyclic_pairs = wcoj_pairs(rows=rows)
        wcoj_engine = Engine(WCOJ_SCHEMA, "postgres")
        binary_engine = Engine(
            WCOJ_SCHEMA, "postgres", optimizer_options={"wcoj": False}
        )
        # The three-way digest gate includes the naive engine, whose
        # product-shaped plans cannot handle thousands of rows — the gate
        # workload stays at the 50-row paper cap; the wcoj/binary pair is
        # digest-checked again at --rows scale (``wcoj_scale`` below).
        wcoj_gate_pairs = cyclic_pairs if rows <= 50 else wcoj_pairs(rows=50)
        context["wcoj"] = (
            wcoj_gate_pairs,
            [
                ("wcoj", wcoj_engine),
                ("binary", binary_engine),
                ("naive", Engine(WCOJ_SCHEMA, "postgres", optimize=False)),
            ],
        )
        if rows > 50:
            context["wcoj_scale"] = (
                cyclic_pairs,
                [
                    ("wcoj", wcoj_engine),
                    ("binary", binary_engine),
                ],
            )
        stages["engine_wcoj"] = lambda: run_workload(wcoj_engine, cyclic_pairs)
        stages["engine_binary"] = lambda: run_workload(binary_engine, cyclic_pairs)
    if need("engine_repeat_cached", "engine_repeat_uncached"):
        # Plan-cache workload: few queries, many databases — the shape of
        # the trial campaigns and the equivalence checker, where
        # re-planning is pure waste.
        repeat_queries = [make_query(seed) for seed in range(10)]
        repeat_pairs = [
            (query, make_db(1000 + d))
            for d in range(15)
            for query in repeat_queries
        ]
        cached_engine = Engine(SCHEMA, "postgres")
        uncached_engine = Engine(SCHEMA, "postgres", plan_cache_size=0)
        context["plan_cache"] = cached_engine
        stages["engine_repeat_cached"] = lambda: run_workload(
            cached_engine, repeat_pairs
        )
        stages["engine_repeat_uncached"] = lambda: run_workload(
            uncached_engine, repeat_pairs
        )
    if need("engine_repeat_shared", "engine_repeat_unshared"):
        # Build-side sharing workload: repeated database *contents* (the
        # trial-campaign case the ROADMAP's "cross-database plan sharing"
        # item describes) — 5 distinct databases, each seen 3 times.
        shared_queries = [make_query(seed) for seed in range(10)]
        shared_dbs = [make_db(2000 + d, rows=20) for d in range(5)] * 3
        shared_pairs = [(q, db) for db in shared_dbs for q in shared_queries]
        shared_engine = Engine(SCHEMA, "postgres")
        unshared_engine = Engine(SCHEMA, "postgres", build_cache_size=0)
        context["build_cache"] = shared_engine
        stages["engine_repeat_shared"] = lambda: run_workload(
            shared_engine, shared_pairs
        )
        stages["engine_repeat_unshared"] = lambda: run_workload(
            unshared_engine, shared_pairs
        )
    if need("theorem1_translation"):
        dm_queries = [make_query(seed, DM_CONFIG) for seed in range(10)]
        stages["theorem1_translation"] = lambda: [
            desugar(to_sqlra(query, SCHEMA), SCHEMA) for query in dm_queries
        ]
    return stages, context


def check_ablation_digests(context, results_doc) -> bool:
    """Verify every engine variant of a workload produces the same outcomes.

    Each context group maps to ``(pairs, [(label, engine), ...])``; all the
    engines of a group must produce bit-identical outcomes — same bags,
    same error classes, same ``outcome_digest``.  Returns True when every
    selected group agrees; records the verdict (and the stage speedup) in
    ``results_doc``.  The ``compiled`` group gates the closure compiler,
    the four-way ``vectorized`` group the columnar backend (vectorized vs
    compiled vs interpreted vs naive), and the three-way ``wcoj`` group
    the multiway join (wcoj vs binary vs naive).
    """
    all_match = True
    for group, speedup_key, fast_stage, slow_stage in (
        ("join_order", "join_order_speedup", "engine_join_order",
         "engine_join_order_fromorder"),
        ("setops", "setop_speedup", "engine_setops", "engine_setops_counted"),
        ("compiled", "compiled_speedup", "engine_compiled",
         "engine_interpreted"),
        ("vectorized", "vectorized_speedup", "engine_vectorized",
         "engine_rowwise"),
        ("vectorized_scale", None, None, None),
        ("wcoj", "wcoj_speedup", "engine_wcoj", "engine_binary"),
        ("wcoj_scale", None, None, None),
    ):
        if group not in context:
            continue
        pairs, engines = context[group]
        digests = {
            label: outcome_digest(engine, pairs) for label, engine in engines
        }
        match = len(set(digests.values())) == 1
        first_label = engines[0][0]
        entry = {"digest_match": match, "outcome_digest": digests[first_label]}
        median = results_doc.get("median_ns", {})
        if speedup_key and fast_stage in median and slow_stage in median:
            entry["speedup"] = round(median[slow_stage] / median[fast_stage], 3)
            results_doc[speedup_key] = entry["speedup"]
        results_doc[group] = entry
        status = "match" if match else "MISMATCH"
        print(
            f"{group}: {'/'.join(label for label, _ in engines)} digests {status}"
            + (f", speedup {entry['speedup']:.2f}x" if "speedup" in entry else "")
        )
        all_match = all_match and match
    return all_match


def bench_campaign_tiers(trials: int, rows: int, rounds: int = 3) -> dict:
    """Paired A/B of the campaign engine tier: shipped (interpreted
    single-use plans) vs the columnar tier on the same trial stream.

    The legs alternate so both see the same scheduler noise (the same
    reasoning as ``paired_ratio``).  The gate asserts the *shipped*
    configuration is within 5% of the better leg — if batch compilation
    ever starts paying off at campaign scale, the bench fails instead of
    silently shipping the slower default.
    """
    from repro.generator import DataFillerConfig
    from repro.validation import ValidationRunner

    data_config = DataFillerConfig(max_rows=rows)
    rowwise = ValidationRunner(variant="postgres", data_config=data_config)
    vectorized = ValidationRunner(
        variant="postgres", data_config=data_config, vectorized=True
    )

    def leg(runner):
        for seed in range(trials):
            runner.run_trial(seed)

    leg(rowwise)  # warm-up: generator/datafiller caches, code caches
    leg(vectorized)
    rw_times, vec_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        leg(rowwise)
        rw_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        leg(vectorized)
        vec_times.append(time.perf_counter() - start)
    rw_tps = trials / statistics.median(rw_times)
    vec_tps = trials / statistics.median(vec_times)
    shipped_vs_best = max(rw_tps, vec_tps) / rw_tps
    ok = shipped_vs_best <= 1.05
    print(
        f"campaign tier A/B ({trials} trials x {rounds} paired rounds): "
        f"rowwise {rw_tps:.0f} trials/s, vectorized {vec_tps:.0f} trials/s "
        f"(shipped=rowwise, best/shipped {shipped_vs_best:.3f}, gate: <= 1.05"
        f"{'' if ok else ', SHIPPED TIER REGRESSED'})"
    )
    return {
        "trials": trials,
        "rounds": rounds,
        "shipped": "rowwise",
        "rowwise_trials_per_sec": round(rw_tps, 1),
        "vectorized_trials_per_sec": round(vec_tps, 1),
        "best_vs_shipped_ratio": round(shipped_vs_best, 3),
        "gate_ok": ok,
    }


def bench_campaign(trials: int, jobs: int, rows: int, out_path: str) -> dict:
    """Serial vs N-worker throughput of one validation campaign.

    The previous file's serial trials/s (if any) is carried over as
    ``previous_serial_trials_per_sec`` with the percentage change in
    ``serial_delta_pct``, so the throughput trajectory across PRs is
    machine-readable from the file alone.  The engine-tier A/B
    (``bench_campaign_tiers``) is merged in as ``engine_tier_ab`` and its
    gate failure propagates through the exit code.
    """
    previous_serial = None
    previous_path = Path(out_path)
    if previous_path.exists():
        try:
            previous = json.loads(previous_path.read_text())
            previous_serial = previous.get("serial", {}).get("trials_per_sec")
        except (json.JSONDecodeError, AttributeError):
            previous_serial = None
    spec = CampaignSpec(kind="validation", variant="postgres", rows=rows)
    print(f"campaign: {trials} trials, postgres variant, serial ...")
    serial = run_campaign(spec, trials=trials, base_seed=0, jobs=1)
    print(f"  serial   {serial.trials_per_sec:10.1f} trials/s")
    tier_ab = bench_campaign_tiers(min(600, trials), rows)
    # On a single-core container the parallel leg can only measure worker
    # process overhead, not parallelism — skip it and say so in the record
    # rather than publishing a meaningless sub-1x "speedup".
    parallel = None
    if multiprocessing.cpu_count() == 1:
        print(f"campaign: jobs={jobs} leg skipped (1 CPU visible)")
    else:
        print(f"campaign: same seed range, jobs={jobs} ...")
        parallel = run_campaign(spec, trials=trials, base_seed=0, jobs=jobs)
        print(f"  jobs={jobs}   {parallel.trials_per_sec:10.1f} trials/s")
    speedup = (
        parallel.trials_per_sec / serial.trials_per_sec
        if parallel is not None and serial.trials_per_sec
        else None
    )
    doc = {
        "schema": "bench-campaign/v1",
        "variant": "postgres",
        "trials": trials,
        "rows": rows,
        "cpu_count": multiprocessing.cpu_count(),
        "serial": {
            "elapsed_s": round(serial.elapsed_s, 3),
            "trials_per_sec": round(serial.trials_per_sec, 1),
            "timing_ms": serial.timing_ms,
        },
        "parallel": (
            {
                "jobs": jobs,
                "elapsed_s": round(parallel.elapsed_s, 3),
                "trials_per_sec": round(parallel.trials_per_sec, 1),
                "timing_ms": parallel.timing_ms,
            }
            if parallel is not None
            else {"jobs": jobs, "skipped": True}
        ),
        "speedup": round(speedup, 3) if speedup is not None else "skipped",
        "engine_tier_ab": tier_ab,
        "digest_match": (
            serial.outcome_digest == parallel.outcome_digest
            if parallel is not None
            else True
        ),
        **(
            {
                "previous_serial_trials_per_sec": previous_serial,
                "serial_delta_pct": round(
                    (serial.trials_per_sec / previous_serial - 1) * 100, 1
                ),
            }
            if previous_serial
            else {}
        ),
        "outcome_digest": serial.outcome_digest,
        "agreements": serial.agreements,
        "mismatches": len(serial.mismatches),
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(
        "campaign speedup: "
        + (f"{speedup:.2f}x" if speedup is not None else "skipped")
        + f" on {jobs} workers "
        f"({multiprocessing.cpu_count()} CPU(s) visible), "
        f"digests {'match' if doc['digest_match'] else 'DIFFER'}, "
        f"p50/p95/p99 {serial.timing_ms.get('p50', 0):.2f}/"
        f"{serial.timing_ms.get('p95', 0):.2f}/"
        f"{serial.timing_ms.get('p99', 0):.2f} ms -> {out_path}"
    )
    return doc


def bench_distributed(trials: int, workers: int, rows: int, out_path: str) -> bool:
    """File-based distributed campaign vs the same campaign run serially.

    Spawns ``workers`` real ``repro work`` subprocesses (one lease each),
    merges their checkpoints through the coordinator, and records the
    digest comparison in the ``distributed`` section of ``out_path``
    (created if the campaign stage has not run).  Returns False when the
    digests differ or any worker fails.
    """
    import os
    import shutil
    import subprocess
    import tempfile

    from repro.campaigns import FileCoordinator

    spec = CampaignSpec(kind="validation", variant="postgres", rows=rows)
    print(f"distributed: {trials} trials, serial reference run ...")
    serial = run_campaign(spec, trials=trials, base_seed=0, jobs=1)
    tmp = tempfile.mkdtemp(prefix="repro-distributed-")
    try:
        coordinator = FileCoordinator(
            spec,
            trials=trials,
            base_seed=0,
            workers=[f"w{i + 1}" for i in range(workers)],
            out_dir=tmp,
            python=sys.executable,
        )
        plan = coordinator.plan()
        print(
            f"distributed: {len(plan)} lease(s) across {workers} "
            "worker subprocess(es) ..."
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        started = time.perf_counter()
        procs = [
            subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)
            for _lease, argv in plan
        ]
        exit_codes = [proc.wait() for proc in procs]
        elapsed = time.perf_counter() - started
        # A failed worker leaves its lease incomplete forever — don't sit
        # out the wait timeout or crash in merge(); record the failure.
        complete = all(code == 0 for code in exit_codes) and coordinator.wait(
            poll_s=0.1, timeout_s=60
        )
        merged = None
        if complete:
            merged = coordinator.merge()
        coordinator.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    match = merged is not None and merged.outcome_digest == serial.outcome_digest
    doc = {}
    path = Path(out_path)
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            doc = {}
    doc.setdefault("schema", "bench-campaign/v1")
    doc["distributed"] = {
        "trials": trials,
        "workers": workers,
        "rows": rows,
        "worker_exit_codes": exit_codes,
        "elapsed_s": round(elapsed, 3),
        "trials_per_sec": round(trials / elapsed, 1) if elapsed > 0 else 0.0,
        "serial_trials_per_sec": round(serial.trials_per_sec, 1),
        "duplicates": merged.duplicates if merged is not None else 0,
        "digest_match": match,
        "outcome_digest": merged.outcome_digest if merged is not None else "",
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    ok = match and complete
    print(
        f"distributed: {workers} workers, {trials / elapsed:.0f} trials/s "
        f"end-to-end, "
        + (
            f"digests {'match' if match else 'DIFFER'}"
            if complete
            else f"INCOMPLETE (worker exit codes {exit_codes})"
        )
        + f" -> {out_path}"
    )
    return ok


# -- service stage ------------------------------------------------------------

# The sustained-QPS workload (plan-heavy multi-join statements with shared
# subplan shapes) and its R/S/T/U instance live in repro.ingest.workload so
# ingested scenarios can drive the same bench: `--service-scenario PATH`
# swaps in build_service_workload() over an imported database.  The workload
# is passed *explicitly* to the spawned load-generator process — it must
# never read a module global, which a spawn re-import would silently reset
# to the default.


def _inline_sql(sql: str, params) -> str:
    """The cold leg's SQL text: parameters inlined as literals, so the
    ad-hoc path parses, plans, and executes the same query from scratch."""
    for k, value in enumerate(params, start=1):
        literal = "'" + value.replace("'", "''") + "'" if isinstance(value, str) else str(value)
        sql = sql.replace(f"${k}", literal)
    return sql


def _service_drive(url, leg, clients, total, seed, workload):
    """Drive the service with ``clients`` concurrent asyncio clients.

    Runs in a *separate process* (spawned by :func:`bench_service`), so the
    load generator never shares the GIL with the server it measures.
    ``workload`` is the ``[(sql, bindings), ...]`` list to cycle through —
    passed explicitly because a spawned child re-imports this module, so a
    module-global workload would silently revert to the default even when
    the parent benched an ingested scenario.  Connections and (for the warm
    leg) statement preparation happen before the timing window; the window
    covers exactly ``total`` requests.  Returns ``(elapsed_s, latencies_ms,
    served)`` where ``served`` is ``[(sql, params, rows), ...]`` for the
    main process's semantics replay.
    """
    import asyncio
    import random

    from repro.service import ServiceClient

    latencies = []
    served = []
    share = [total // clients] * clients
    for i in range(total % clients):
        share[i] += 1

    async def request_loop(index, client, prepared):
        rng = random.Random(seed * 100_000 + index)
        for _ in range(share[index]):
            sql, bindings = rng.choice(workload)
            params = rng.choice(bindings)
            started = time.perf_counter()
            if leg == "warm":
                result = await client.execute(prepared[sql], params)
            else:
                result = await client.query(_inline_sql(sql, params))
            latencies.append((time.perf_counter() - started) * 1e3)
            served.append((sql, tuple(params), result.rows))

    async def drive():
        sessions = []
        for _ in range(clients):
            client = ServiceClient(url, tenant="bench")
            await client.connect()
            prepared = {}
            if leg == "warm":
                for sql, _bindings in workload:
                    prepared[sql] = await client.prepare(sql)
            sessions.append((client, prepared))
        started = time.perf_counter()
        await asyncio.gather(
            *(
                request_loop(i, client, prepared)
                for i, (client, prepared) in enumerate(sessions)
            )
        )
        elapsed = time.perf_counter() - started
        for client, _prepared in sessions:
            await client.close()
        return elapsed

    return asyncio.run(drive()), latencies, served


def bench_service(
    clients: int,
    requests: int,
    rows: int,
    out_path: str,
    min_speedup: float = 2.0,
    scenario_path: str = None,
) -> bool:
    """Sustained-QPS service benchmark: warm (prepared) vs cold (ad-hoc).

    Starts the asyncio query service in-process and drives it from a
    separate load-generator process (:func:`_service_drive`) with
    ``clients`` concurrent asyncio clients per leg, recording QPS plus
    p50/p95/p99 request latency.  The warm leg executes prepared
    statements (parse/annotate once, plan cache + cross-query build-side
    sharing); the cold leg sends the same queries — parameters inlined —
    through ``/query``, which parses and plans from scratch per request.

    With ``scenario_path`` the bench serves an *ingested* database instead
    of the default R/S/T/U instance, driving it with an FK-join workload
    derived from the scenario (keep such scenarios small — every served
    result is still replayed through the formal semantics).

    Two gates decide the exit code: every served result (both legs) must
    match the formal semantics replayed over the same database
    (``digest_match``), and the warm leg must clear 2x the cold leg's QPS.
    """
    import asyncio

    from repro.core import Null
    from repro.ingest import import_scenario
    from repro.ingest.workload import (
        build_service_workload,
        default_service_database,
        default_service_workload,
    )
    from repro.service import QueryService, ServiceClient, ServiceThread
    from repro.service.protocol import (
        bind_parameters,
        expand_placeholders,
        rows_from_json,
    )
    from repro.sql import annotate

    if scenario_path:
        scenario = import_scenario(scenario_path)
        db = scenario.database
        workload = build_service_workload(scenario)
    else:
        db = default_service_database(rows)
        workload = default_service_workload()
    semantics = SqlSemantics(db.schema, star_style=STAR_COMPOSITIONAL)

    # The formal-semantics oracle per (sql, params): every served response
    # is replayed against these multisets.
    oracle = {}
    for sql, bindings in workload:
        template, count = expand_placeholders(sql)
        query = annotate(template, db.schema)
        for params in bindings:
            bound = bind_parameters(query, list(params), count)
            table = semantics.run(bound, db)
            oracle[(sql, tuple(params))] = sorted(table.bag, key=repr)

    service = QueryService()
    served_digest = hashlib.sha256()
    mismatches = []

    def check(served):
        for sql, params, rows_json in served:
            got = sorted(rows_from_json(rows_json), key=repr)
            served_digest.update(repr(got).encode())
            if got != oracle[(sql, tuple(params))]:
                mismatches.append((sql, params))

    with ServiceThread(service) as thread:
        url = thread.url
        schema_json = {t: list(db.schema.attributes(t)) for t in db.schema.table_names}
        tables_json = {
            t: [
                [None if isinstance(v, Null) else v for v in row]
                for row in db.table(t).bag
            ]
            for t in db.schema.table_names
        }

        async def load():
            async with ServiceClient(url, tenant="bench") as c:
                await c.load(schema_json, tables_json)

        asyncio.run(load())
        total_rows = sum(len(db.table(t)) for t in db.schema.table_names)
        print(
            f"service: {clients} clients x {requests} requests/leg, "
            + (
                f"scenario {scenario_path} ({total_rows} rows), "
                if scenario_path
                else f"{rows}-row tables, "
            )
            + "load generator in its own process ..."
        )

        # A spawned (not forked) pool: the child must not inherit the
        # server thread's loop state, and must never share the server's
        # GIL — the whole point of the separate process.
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            def run_leg(leg):
                warmup = min(clients * 4, requests)
                pool.apply(
                    _service_drive, (url, leg, clients, warmup, 1, workload)
                )
                # Best-of-two timed rounds: the QPS figure is the sustained
                # capability, not whichever round the container scheduler
                # happened to preempt.  Every served result of every round
                # still goes through the semantics replay.
                elapsed = None
                latencies = []
                for round_seed in (2, 3):
                    round_elapsed, round_latencies, served = pool.apply(
                        _service_drive,
                        (url, leg, clients, requests, round_seed, workload),
                    )
                    check(served)
                    latencies.extend(round_latencies)
                    if elapsed is None or round_elapsed < elapsed:
                        elapsed = round_elapsed
                latencies.sort()

                def pct(p):
                    return latencies[
                        min(len(latencies) - 1, int(p * len(latencies)))
                    ]

                return {
                    "requests": requests,
                    "elapsed_s": round(elapsed, 3),
                    "qps": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
                    "latency_ms": {
                        "p50": round(pct(0.50), 3),
                        "p95": round(pct(0.95), 3),
                        "p99": round(pct(0.99), 3),
                    },
                }

            cold = run_leg("cold")
            print(
                f"  cold (ad-hoc /query)       {cold['qps']:10.1f} qps  "
                f"p50/p95/p99 {cold['latency_ms']['p50']:.2f}/"
                f"{cold['latency_ms']['p95']:.2f}/{cold['latency_ms']['p99']:.2f} ms"
            )
            warm = run_leg("warm")
            print(
                f"  warm (prepared /execute)   {warm['qps']:10.1f} qps  "
                f"p50/p95/p99 {warm['latency_ms']['p50']:.2f}/"
                f"{warm['latency_ms']['p95']:.2f}/{warm['latency_ms']['p99']:.2f} ms"
            )

        async def stats():
            async with ServiceClient(url, tenant="bench") as c:
                return await c.stats()

        service_stats = asyncio.run(stats())

    tenant = service_stats["tenants"]["bench"]
    build = tenant["build_cache"]
    probes = build["hits"] + build["misses"]
    cross_hit_rate = build["cross_hits"] / probes if probes else 0.0
    speedup = warm["qps"] / cold["qps"] if cold["qps"] else 0.0
    digest_match = not mismatches

    doc = {
        "schema": "bench-service/v1",
        "clients": clients,
        "rows": rows if not scenario_path else total_rows,
        **({"scenario": scenario_path} if scenario_path else {}),
        "warm": warm,
        "cold": cold,
        "speedup": round(speedup, 3),
        "cross_query_build_hits": build["cross_hits"],
        "cross_query_hit_rate": round(cross_hit_rate, 4),
        "plan_cache": tenant["plan_cache"],
        "build_cache": build,
        "statements": tenant["statements"],
        "served_digest": served_digest.hexdigest(),
        "digest_match": digest_match,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    ok = digest_match and speedup >= min_speedup and build["cross_hits"] > 0
    print(
        f"service: prepared/ad-hoc speedup {speedup:.2f}x "
        f"(gate: >= {min_speedup:g}x), "
        f"cross-query hit rate {cross_hit_rate:.1%} "
        f"({build['cross_hits']} hits), semantics replay "
        f"{'matches' if digest_match else 'DIVERGES'} "
        f"({len(oracle)} distinct results) -> {out_path}"
    )
    if mismatches:
        for sql, params in mismatches[:5]:
            print(f"  MISMATCH: {sql!r} params={list(params)}", file=sys.stderr)
    return ok


# -- ingest stage -------------------------------------------------------------


def bench_ingest(rows: int, trials: int, out_path: str, seed: int = 1) -> bool:
    """Ingestion + live-SQLite differential throughput at scale.

    Synthesizes the FK-rich library scenario at roughly ``rows`` total rows,
    exports it to a real SQLite file, re-imports it through the production
    importer (timing the import), checks the metamorphic round-trip (every
    re-imported table fingerprint must equal the original's), then runs a
    ``trials``-seed live-SQLite differential campaign over the imported
    database, recording trials/s and the divergence breakdown.

    The gate: the round-trip must be lossless and the campaign must finish
    with **zero unclassified divergences** (classified dialect gaps are
    counted, not failed).
    """
    import shutil
    import tempfile

    from repro.campaigns import CampaignSpec, run_campaign
    from repro.ingest import import_scenario
    from repro.ingest.demo import library_scenario
    from repro.ingest.importer import export_sqlite

    print(f"ingest: synthesizing the library scenario at ~{rows} rows ...")
    started = time.perf_counter()
    scenario = library_scenario(rows, seed=seed)
    synth_s = time.perf_counter() - started
    total = scenario.total_rows

    tmp = tempfile.mkdtemp(prefix="bench-ingest-")
    try:
        db_path = str(Path(tmp) / "library.db")
        started = time.perf_counter()
        export_sqlite(scenario, db_path)
        export_s = time.perf_counter() - started

        started = time.perf_counter()
        imported = import_scenario(db_path)
        import_s = time.perf_counter() - started
        roundtrip_ok = (
            imported.table_fingerprints() == scenario.table_fingerprints()
            and sorted(map(repr, imported.fks)) == sorted(map(repr, scenario.fks))
        )

        print(
            f"ingest: {total} rows synthesized in {synth_s:.2f}s, "
            f"exported in {export_s:.2f}s, imported in {import_s:.2f}s, "
            f"round-trip fingerprints "
            f"{'match' if roundtrip_ok else 'DIFFER'}"
        )

        spec = CampaignSpec(kind="live-sqlite", scenario=db_path, rows=0)
        result = run_campaign(spec, trials=trials, base_seed=0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    unclassified = len(result.mismatches)
    doc = {
        "schema": "bench-ingest/v1",
        "rows": total,
        "trials": trials,
        "synth_s": round(synth_s, 3),
        "export_s": round(export_s, 3),
        "import_s": round(import_s, 3),
        "roundtrip_fingerprints_match": roundtrip_ok,
        "trials_per_sec": round(result.trials_per_sec, 1),
        "agreements": result.agreements,
        "classified": result.classified,
        "classified_by_class": result.classified_by_class,
        "unclassified_divergences": unclassified,
        "outcome_digest": result.outcome_digest,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    ok = roundtrip_ok and unclassified == 0
    breakdown = (
        ", ".join(
            f"{name}: {count}"
            for name, count in result.classified_by_class.items()
        )
        or "none"
    )
    print(
        f"ingest: {result.trials_per_sec:.0f} trials/s over {total} rows, "
        f"{result.classified} classified divergence(s) ({breakdown}), "
        f"{unclassified} unclassified -> {out_path}"
    )
    for mismatch in result.mismatches[:5]:
        print(f"  UNCLASSIFIED: {mismatch.get('detail')}", file=sys.stderr)
    return ok


# -- chaos stage ---------------------------------------------------------------


def _chaos_distributed(trials, workers, rows, seed):
    """An HTTP-distributed campaign under ambient faults, with a live
    coordinator bounce mid-campaign, gated on digest identity with a
    fault-free serial run."""
    import shutil
    import tempfile
    import threading

    from repro import faults
    from repro.campaigns import (
        Coordinator,
        CoordinatorServer,
        summarize_checkpoint,
        work_remote,
    )
    from repro.faults import FaultPlan

    spec = CampaignSpec(kind="validation", variant="postgres", rows=rows)
    print(f"chaos/distributed: {trials} trials, fault-free serial reference ...")
    serial = run_campaign(spec, trials=trials, base_seed=0, jobs=1)

    lease_trials = max(5, trials // 20)
    plan = FaultPlan(
        seed,
        {
            "worker.crash": 0.2,
            "worker.duplicate_submit": 0.15,
            "transport.connect": 0.05,
            "transport.read_timeout": 0.03,
            "checkpoint.torn": 0.05,
        },
    )
    tmp = tempfile.mkdtemp(prefix="bench-chaos-")
    bounced = False
    try:
        checkpoint = str(Path(tmp) / "campaign.jsonl")
        journal = str(Path(tmp) / "leases.jsonl")

        def make_coordinator(resume):
            return Coordinator(
                spec,
                trials,
                base_seed=0,
                lease_trials=lease_trials,
                lease_timeout_s=2.0,
                max_lease_attempts=1000,
                checkpoint=checkpoint,
                journal_path=journal,
                resume=resume,
            )

        coordinator = make_coordinator(resume=False)
        server = CoordinatorServer(coordinator)
        server.start()
        port = int(server.url.rsplit(":", 1)[1])
        print(
            f"chaos/distributed: {workers} worker thread(s) against "
            f"{server.url} under fault plan seed {seed} ..."
        )
        faults.install(plan)
        started = time.perf_counter()
        summaries = [None] * workers

        def drive(index):
            summaries[index] = work_remote(
                server.url,
                worker=f"chaos-w{index + 1}",
                poll_s=0.05,
                retries=6,
                backoff_s=0.05,
                timeout_s=30.0,
            )

        threads = [
            threading.Thread(target=drive, args=(i,), daemon=True)
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()

        # The coordinator bounce: once a third of the campaign has landed,
        # kill the server and coordinator, resume from the checkpoint on
        # the SAME port.  Workers ride it out on their retry budget.
        bounce_deadline = time.monotonic() + 120
        while (
            coordinator.status()["completed"] < trials // 3
            and time.monotonic() < bounce_deadline
        ):
            time.sleep(0.02)
        server.stop()
        coordinator.close()
        coordinator = make_coordinator(resume=True)
        server = CoordinatorServer(coordinator, port=port)
        server.start()
        bounced = True
        print(
            "chaos/distributed: coordinator bounced at "
            f"{coordinator.resumed_trials} resumed trial(s); serving again"
        )

        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - started
        stuck = any(thread.is_alive() for thread in threads)
        server.stop()
        coordinator.close()
        result = coordinator.result(elapsed_s=elapsed)
        _header, merged = summarize_checkpoint(checkpoint, strict=True)
        file_digest = merged.finalize().outcome_digest
    finally:
        faults.uninstall()
        shutil.rmtree(tmp, ignore_errors=True)

    crashes = sum((s or {}).get("crashes", 0) for s in summaries)
    digest_match = result.outcome_digest == serial.outcome_digest
    file_match = file_digest == serial.outcome_digest
    ok = (
        not stuck
        and digest_match
        and file_match
        and result.completed == trials
        and crashes > 0
        and plan.injected.get("worker.crash", 0) > 0
    )
    print(
        f"chaos/distributed: {result.completed}/{trials} trials in "
        f"{elapsed:.1f}s, {crashes} injected worker crash(es), "
        f"{result.duplicates} duplicate record(s), digests "
        f"{'match' if digest_match and file_match else 'DIFFER'}"
    )
    return ok, {
        "trials": trials,
        "workers": workers,
        "rows": rows,
        "lease_trials": lease_trials,
        "completed": result.completed,
        "duplicates": result.duplicates,
        "worker_crashes": crashes,
        "coordinator_bounced": bounced,
        "elapsed_s": round(elapsed, 3),
        "digest_match": digest_match,
        "merged_file_digest_match": file_match,
        "outcome_digest": result.outcome_digest,
        "faults": plan.counts(),
        "workers_stuck": stuck,
    }


def _chaos_quarantine(seed):
    """A poison seed range must quarantine — campaign done, holes reported."""
    from repro.campaigns import Coordinator
    from repro.faults import FaultPlan

    spec = CampaignSpec(kind="validation", variant="postgres", rows=3)
    trials, lease_trials, max_attempts = 40, 10, 3
    plan = FaultPlan(seed, {"worker.crash": 0.1})
    poison = (0, lease_trials)
    clock_now = [0.0]
    coordinator = Coordinator(
        spec,
        trials,
        lease_trials=lease_trials,
        lease_timeout_s=5.0,
        max_lease_attempts=max_attempts,
        clock=lambda: clock_now[0],
    )
    backend = spec.build()
    for _ in range(10_000):
        if coordinator.done:
            break
        lease = coordinator.acquire("chaos")
        if lease is None or (lease.lo, lease.hi) == poison or plan.fire("worker.crash"):
            clock_now[0] += coordinator.lease_timeout_s + 1
            coordinator.expire_stale()
            continue
        coordinator.submit(
            lease.lease_id,
            [backend.run_trial(s) for s in lease.seeds()],
            worker="chaos",
        )
    report = coordinator.quarantined()
    status = coordinator.status()
    ok = (
        coordinator.done
        and len(report) == 1
        and (report[0]["lo"], report[0]["hi"]) == poison
        and status["quarantined_pending"] == lease_trials
        and coordinator.result().completed == trials - lease_trials
    )
    print(
        f"chaos/quarantine: {status['quarantined_ranges']} range(s) "
        f"quarantined after {max_attempts} attempts, "
        f"{status['quarantined_pending']} seed(s) reported unfinished, "
        f"campaign {'done' if coordinator.done else 'WEDGED'}"
    )
    return ok, {
        "trials": trials,
        "max_lease_attempts": max_attempts,
        "quarantined_ranges": status["quarantined_ranges"],
        "quarantined_pending": status["quarantined_pending"],
        "done": coordinator.done,
        "report": report,
    }


def _chaos_corruption():
    """Checkpoint damage detection: an interior bit flip must be caught by
    the per-line CRC with its line number; a torn final line must be
    silently tolerated (the kill-mid-write signature)."""
    import shutil
    import tempfile

    from repro import faults as faultmod
    from repro.campaigns import CheckpointCorruption, load_checkpoint
    from repro.campaigns.checkpoint import CHECKPOINT_SCHEMA, CheckpointWriter

    spec = CampaignSpec(kind="validation", variant="postgres", rows=3)
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "spec": spec.to_json(),
        "base_seed": 0,
        "trials": 6,
    }
    records = [{"seed": s, "code": 1} for s in range(6)]
    tmp = tempfile.mkdtemp(prefix="bench-chaos-crc-")
    try:
        flipped = str(Path(tmp) / "flipped.jsonl")
        writer = CheckpointWriter(flipped, header, fresh=True)
        writer.write_records(records)
        writer.close()
        faultmod.flip_bit(flipped, 3)  # line 3 = second record
        detected_line = None
        try:
            load_checkpoint(flipped, strict=True)
        except CheckpointCorruption as exc:
            detected_line = exc.line_number
        interior_ok = detected_line == 3

        torn = str(Path(tmp) / "torn.jsonl")
        writer = CheckpointWriter(torn, header, fresh=True)
        writer.write_records(records)
        writer.close()
        faultmod.tear_final_line(torn)
        _header, kept = load_checkpoint(torn, strict=True)
        torn_ok = len(kept) == len(records) - 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    print(
        "chaos/corruption: interior bit flip "
        + (f"caught at line {detected_line}" if interior_ok else "MISSED")
        + ", torn final line "
        + ("tolerated" if torn_ok else "NOT tolerated")
    )
    return interior_ok and torn_ok, {
        "interior_flip_detected": interior_ok,
        "detected_line": detected_line,
        "torn_final_tolerated": torn_ok,
    }


def _chaos_service(requests, clients, seed):
    """Concurrent service load under injected execution faults and stream
    drops: every response is either bit-identical to the fault-free oracle
    or a clean error — silent wrong answers are the one unforgivable
    outcome."""
    import asyncio
    import threading

    from repro import faults
    from repro.core import Database, Schema
    from repro.faults import FaultPlan
    from repro.service import (
        QueryService,
        ServiceClient,
        ServiceError,
        ServiceThread,
    )

    schema = Schema({"R": ("A", "B"), "S": ("C", "D")})
    tables = {
        "R": [(i, (i * 7) % 5 if i % 4 else None) for i in range(1, 25)],
        "S": [(i % 6, i * 10) for i in range(1, 19)],
    }
    queries = [
        "SELECT R.A FROM R",
        "SELECT R.A, R.B FROM R WHERE R.A > 5",
        "SELECT R.B FROM R WHERE R.B IS NOT NULL",
        "SELECT R.A, S.D FROM R, S WHERE R.A = S.C",
        "SELECT S.C FROM S UNION SELECT R.A FROM R",
    ]
    service = QueryService(batch_rows=4)
    service.install_database(Database(schema, tables))
    plan = FaultPlan(
        seed, {"server.exec_error": 0.25, "server.disconnect": 0.05}
    )

    def fetch(url, sql):
        async def go():
            async with ServiceClient(url) as client:
                result = await client.query(sql)
                return sorted((tuple(r) for r in result.rows), key=repr)

        return asyncio.run(go())

    with ServiceThread(service) as thread:
        oracle = {sql: fetch(thread.url, sql) for sql in queries}
        counters = [
            {"ok": 0, "clean_errors": 0, "silent_wrong": 0}
            for _ in range(clients)
        ]

        def drive(index):
            mine = counters[index]
            for k in range(index, requests, clients):
                sql = queries[k % len(queries)]
                try:
                    rows = fetch(thread.url, sql)
                except (
                    ServiceError,
                    ConnectionError,
                    asyncio.IncompleteReadError,
                ):
                    mine["clean_errors"] += 1
                    continue
                if rows == oracle[sql]:
                    mine["ok"] += 1
                else:
                    mine["silent_wrong"] += 1

        faults.install(plan)
        try:
            threads = [
                threading.Thread(target=drive, args=(i,), daemon=True)
                for i in range(clients)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300)
        finally:
            faults.uninstall()
        tier_fallbacks = service.tier_fallbacks
        internal_errors = service.internal_errors

    totals = {
        key: sum(c[key] for c in counters)
        for key in ("ok", "clean_errors", "silent_wrong")
    }
    ok = (
        totals["silent_wrong"] == 0
        and totals["ok"] + totals["clean_errors"] == requests
        and tier_fallbacks > 0
    )
    print(
        f"chaos/service: {requests} request(s) x {clients} client(s): "
        f"{totals['ok']} correct, {totals['clean_errors']} clean error(s), "
        f"{totals['silent_wrong']} silent wrong answer(s), "
        f"{tier_fallbacks} tier fallback(s)"
    )
    return ok, {
        "requests": requests,
        "clients": clients,
        **totals,
        "tier_fallbacks": tier_fallbacks,
        "internal_errors": internal_errors,
        "faults": plan.counts(),
    }


def bench_chaos(
    trials: int,
    workers: int,
    rows: int,
    requests: int,
    seed: int,
    out_path: str,
) -> bool:
    """The deterministic chaos stage: four legs, every gate about *safety
    under faults* — never a wrong answer, never a silent hole, never a
    wedged campaign — recorded in ``out_path``."""
    distributed_ok, distributed_doc = _chaos_distributed(
        trials, workers, rows, seed
    )
    quarantine_ok, quarantine_doc = _chaos_quarantine(seed)
    corruption_ok, corruption_doc = _chaos_corruption()
    service_ok, service_doc = _chaos_service(requests, min(4, workers + 1), seed)
    ok = distributed_ok and quarantine_ok and corruption_ok and service_ok
    doc = {
        "schema": "bench-chaos/v1",
        "seed": seed,
        "distributed": distributed_doc,
        "quarantine": quarantine_doc,
        "corruption": corruption_doc,
        "service": service_doc,
        "ok": ok,
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"chaos: {'all gates pass' if ok else 'GATE FAILED'} -> {out_path}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="rounds per stage")
    parser.add_argument(
        "--rows", type=int, default=50,
        help="table size for the columnar workload stages "
        "(engine_vectorized/engine_rowwise; default: the paper's 50-row cap)",
    )
    parser.add_argument(
        "--stages",
        default=None,
        help="comma-separated subset of stages to run (default: all; "
        "'campaign' selects the campaign-throughput stage)",
    )
    parser.add_argument(
        "--campaign-trials", type=int, default=1500,
        help="trials for the campaign stage",
    )
    parser.add_argument(
        "--campaign-jobs", type=int, default=4,
        help="worker processes for the parallel campaign leg",
    )
    parser.add_argument(
        "--campaign-rows", type=int, default=6,
        help="row cap for campaign trial databases",
    )
    parser.add_argument(
        "--distributed-trials", type=int, default=600,
        help="trials for the distributed stage",
    )
    parser.add_argument(
        "--distributed-workers", type=int, default=3,
        help="worker subprocesses for the distributed stage",
    )
    parser.add_argument(
        "--service-clients", type=int, default=8,
        help="concurrent asyncio clients for the service stage",
    )
    parser.add_argument(
        "--service-requests", type=int, default=400,
        help="requests per leg (warm and cold) for the service stage",
    )
    parser.add_argument(
        "--service-rows", type=int, default=60,
        help="row cap for the service stage's tables (kept small enough "
        "that the formal-semantics replay gate stays cheap)",
    )
    parser.add_argument(
        "--service-min-speedup", type=float, default=2.0,
        help="warm/cold QPS ratio the service stage must clear (relax on "
        "shared CI runners where wall-clock ratios are noisy; the digest "
        "and cross-hit gates always apply)",
    )
    parser.add_argument(
        "--service-out",
        default=str(_ROOT / "BENCH_service.json"),
        help="service-stage output JSON path",
    )
    parser.add_argument(
        "--service-scenario", default=None, metavar="PATH",
        help="serve an ingested scenario (SQLite file, .sql script or CSV "
        "directory) instead of the built-in R/S/T/U tables, driven by an "
        "FK-join workload derived from it (keep it small: every served "
        "result is replayed through the formal semantics)",
    )
    parser.add_argument(
        "--ingest-rows", type=int, default=100_000,
        help="approximate total rows for the ingest stage's scenario",
    )
    parser.add_argument(
        "--ingest-trials", type=int, default=500,
        help="live-SQLite differential trials for the ingest stage",
    )
    parser.add_argument(
        "--ingest-out",
        default=str(_ROOT / "BENCH_ingest.json"),
        help="ingest-stage output JSON path",
    )
    parser.add_argument(
        "--chaos-trials", type=int, default=500,
        help="trials for the chaos stage's distributed campaign",
    )
    parser.add_argument(
        "--chaos-workers", type=int, default=3,
        help="worker threads for the chaos stage's distributed campaign",
    )
    parser.add_argument(
        "--chaos-rows", type=int, default=4,
        help="row cap for chaos-stage trial databases",
    )
    parser.add_argument(
        "--chaos-requests", type=int, default=200,
        help="service requests for the chaos stage's service leg",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=1,
        help="fault-plan seed for the chaos stage (same seed, same faults)",
    )
    parser.add_argument(
        "--chaos-out",
        default=str(_ROOT / "BENCH_chaos.json"),
        help="chaos-stage output JSON path",
    )
    parser.add_argument(
        "--out",
        default=str(_ROOT / "BENCH_engine.json"),
        help="engine-stage output JSON path",
    )
    parser.add_argument(
        "--campaign-out",
        default=str(_ROOT / "BENCH_campaign.json"),
        help="campaign-stage output JSON path",
    )
    args = parser.parse_args(argv)

    known = set(ENGINE_STAGES) | {
        CAMPAIGN_STAGE,
        DISTRIBUTED_STAGE,
        SERVICE_STAGE,
        INGEST_STAGE,
        CHAOS_STAGE,
    }
    if args.stages is None:
        selected = list(ENGINE_STAGES) + [
            CAMPAIGN_STAGE,
            DISTRIBUTED_STAGE,
            SERVICE_STAGE,
            INGEST_STAGE,
            CHAOS_STAGE,
        ]
    else:
        selected = [name.strip() for name in args.stages.split(",") if name.strip()]
        unknown = [name for name in selected if name not in known]
        if unknown:
            parser.error(
                f"unknown stage(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}"
            )

    stages, context = build_stages(set(selected), rows=args.rows)

    results = {}
    semantics_ratio_value = None
    for name in selected:
        if name in (
            CAMPAIGN_STAGE,
            DISTRIBUTED_STAGE,
            SERVICE_STAGE,
            INGEST_STAGE,
            CHAOS_STAGE,
        ):
            continue
        fn = stages[name]
        fn()  # warm-up (also populates any lazy caches outside the timing)
        results[name] = median_ns(fn, args.rounds)
        print(f"{name:28s} {results[name] / 1e6:12.3f} ms (median of {args.rounds})")
        if (
            semantics_ratio_value is None
            and "semantics_eval" in results
            and "semantics_eval_naive" in results
        ):
            # The gated ratio is measured here, as soon as both legs are
            # warm, rather than after every stage has run: the legs are
            # only a few ms each, and the heap the later large-table
            # stages leave behind is enough to push the paired measurement
            # past the gate's noise margin.
            semantics_ratio_value = paired_ratio(
                stages["semantics_eval"],
                stages["semantics_eval_naive"],
                rounds=max(args.rounds, 9),
            )

    digests_ok = True
    semantics_ok = True
    if results:
        results_doc = {
            "schema": "bench-engine/v1",
            "rounds": args.rounds,
            "rows": args.rows,
            "median_ns": results,
        }
        if "engine_naive" in results and "engine_optimized" in results:
            speedup = results["engine_naive"] / results["engine_optimized"]
            results_doc["engine_speedup"] = round(speedup, 3)
            print(f"\nengine optimizer speedup: {speedup:.2f}x")
        if "engine_repeat_cached" in results and "plan_cache" in context:
            cached_engine = context["plan_cache"]
            results_doc["plan_cache"] = cached_engine.cache_info()
            if "engine_repeat_uncached" in results:
                results_doc["plan_cache_speedup"] = round(
                    results["engine_repeat_uncached"]
                    / results["engine_repeat_cached"],
                    3,
                )
                print(
                    f"plan cache speedup (10 queries x 15 dbs): "
                    f"{results_doc['plan_cache_speedup']:.2f}x "
                    f"{cached_engine.cache_info()}"
                )
        if "engine_repeat_shared" in results and "build_cache" in context:
            shared_engine = context["build_cache"]
            results_doc["build_cache"] = shared_engine.build_cache_info()
            if "engine_repeat_unshared" in results:
                results_doc["build_cache_speedup"] = round(
                    results["engine_repeat_unshared"]
                    / results["engine_repeat_shared"],
                    3,
                )
                print(
                    f"build-side sharing speedup (repeated contents): "
                    f"{results_doc['build_cache_speedup']:.2f}x "
                    f"{shared_engine.build_cache_info()}"
                )
        if semantics_ratio_value is not None:
            # The fast-path dispatch exists so the optimized route is never
            # slower than the literal one; gate it (5% noise allowance,
            # measured pairwise so both legs see the same scheduler noise).
            ratio = semantics_ratio_value
            results_doc["semantics_ratio"] = round(ratio, 3)
            semantics_ok = ratio <= 1.05
            print(
                f"semantics fast-path ratio: {ratio:.3f} (gate: <= 1.05"
                f"{'' if semantics_ok else ', REGRESSED'})"
            )
        digests_ok = check_ablation_digests(context, results_doc)
        Path(args.out).write_text(json.dumps(results_doc, indent=2) + "\n")
        print(f"engine stages -> {args.out}")

    campaign_ok = True
    if CAMPAIGN_STAGE in selected:
        campaign_doc = bench_campaign(
            args.campaign_trials,
            args.campaign_jobs,
            args.campaign_rows,
            args.campaign_out,
        )
        campaign_ok = campaign_doc["engine_tier_ab"]["gate_ok"]
    distributed_ok = True
    if DISTRIBUTED_STAGE in selected:
        distributed_ok = bench_distributed(
            args.distributed_trials,
            args.distributed_workers,
            args.campaign_rows,
            args.campaign_out,
        )
    service_ok = True
    if SERVICE_STAGE in selected:
        service_ok = bench_service(
            args.service_clients,
            args.service_requests,
            args.service_rows,
            args.service_out,
            min_speedup=args.service_min_speedup,
            scenario_path=args.service_scenario,
        )
    ingest_ok = True
    if INGEST_STAGE in selected:
        ingest_ok = bench_ingest(
            args.ingest_rows,
            args.ingest_trials,
            args.ingest_out,
        )
    chaos_ok = True
    if CHAOS_STAGE in selected:
        chaos_ok = bench_chaos(
            args.chaos_trials,
            args.chaos_workers,
            args.chaos_rows,
            args.chaos_requests,
            args.chaos_seed,
            args.chaos_out,
        )
    if not digests_ok:
        print("FATAL: optimizer ablation digests disagree", file=sys.stderr)
        return 1
    if not semantics_ok:
        print(
            "FATAL: semantics fast path benches more than 5% slower than "
            "the literal route (re-tune the interleave dispatch)",
            file=sys.stderr,
        )
        return 1
    if not distributed_ok:
        print(
            "FATAL: distributed campaign digest/workers disagree with the "
            "serial run",
            file=sys.stderr,
        )
        return 1
    if not campaign_ok:
        print(
            "FATAL: the shipped campaign engine tier benches more than 5% "
            "slower than the columnar alternative (re-evaluate the "
            "single-use tier choice in repro.validation.runner)",
            file=sys.stderr,
        )
        return 1
    if not service_ok:
        print(
            "FATAL: service stage gate failed (semantics replay mismatch, "
            "warm/cold speedup below 2x, or no cross-query build-cache "
            "hits)",
            file=sys.stderr,
        )
        return 1
    if not ingest_ok:
        print(
            "FATAL: ingest stage gate failed (lossy import/export "
            "round-trip, or unclassified live-SQLite divergences)",
            file=sys.stderr,
        )
        return 1
    if not chaos_ok:
        print(
            "FATAL: chaos stage gate failed (digest drift under faults, a "
            "wedged or unreported quarantine, undetected checkpoint "
            "corruption, or a silently wrong service answer)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
