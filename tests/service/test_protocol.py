"""Parameter placeholders and row framing: the service's wire protocol."""

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import Engine
from repro.service.protocol import (
    ProtocolError,
    bind_parameters,
    expand_placeholders,
    row_to_json,
    rows_from_json,
)
from repro.sql import annotate


SCHEMA = Schema({"R": ("A", "B")})
DB = Database(SCHEMA, {"R": [(1, 2), (3, NULL), (1, 2)]})


# -- expand_placeholders ------------------------------------------------------


def test_expand_rewrites_markers_into_sentinels():
    rewritten, count = expand_placeholders("SELECT R.A FROM R WHERE R.B = $1")
    assert count == 1
    assert "$1" not in rewritten
    assert "'\x00param:1\x00'" in rewritten


def test_expand_skips_markers_inside_string_literals():
    sql = "SELECT R.A FROM R WHERE R.B = '$1' AND R.A = $1"
    rewritten, count = expand_placeholders(sql)
    assert count == 1
    assert "'$1'" in rewritten  # the data survived verbatim
    assert rewritten.count("\x00") == 2  # exactly one sentinel


def test_expand_honours_quote_escapes():
    sql = "SELECT R.A FROM R WHERE R.B = 'it''s $1' AND R.A = $1"
    rewritten, count = expand_placeholders(sql)
    assert count == 1
    assert "it''s $1" in rewritten


def test_expand_rejects_gaps_stray_dollar_and_nul():
    with pytest.raises(ProtocolError, match="missing \\$1"):
        expand_placeholders("SELECT R.A FROM R WHERE R.B = $2")
    with pytest.raises(ProtocolError, match="stray"):
        expand_placeholders("SELECT R.A FROM R WHERE R.B = $x")
    with pytest.raises(ProtocolError, match="NUL"):
        expand_placeholders("SELECT R.A FROM R WHERE R.B = '\x00'")


def test_expand_no_params_is_identity():
    sql = "SELECT R.A FROM R"
    assert expand_placeholders(sql) == (sql, 0)


# -- bind_parameters ----------------------------------------------------------


def _prepare(sql):
    template, count = expand_placeholders(sql)
    return annotate(template, SCHEMA), count


def test_bind_produces_executable_queries():
    query, count = _prepare("SELECT R.A FROM R WHERE R.B = $1")
    engine = Engine(SCHEMA, "postgres")
    bound = bind_parameters(query, [2], count)
    assert sorted(engine.execute(bound, DB).bag) == [(1,), (1,)]
    # A different binding is a different (cacheable) query.
    other = bind_parameters(query, [99], count)
    assert list(engine.execute(other, DB).bag) == []
    assert bound != other


def test_bind_null_parameter():
    query, count = _prepare("SELECT R.A FROM R WHERE R.B IS NULL OR R.B = $1")
    engine = Engine(SCHEMA, "postgres")
    bound = bind_parameters(query, [None], count)
    # NULL = NULL is unknown, so only the IS NULL row qualifies.
    assert sorted(engine.execute(bound, DB).bag) == [(3,)]


def test_bind_equal_params_give_equal_hashable_asts():
    query, count = _prepare("SELECT R.A FROM R WHERE R.B = $1")
    a = bind_parameters(query, [7], count)
    b = bind_parameters(query, [7], count)
    assert a == b
    assert hash(a) == hash(b)  # plan-cache key property


def test_bind_count_mismatch_and_bad_values():
    query, count = _prepare("SELECT R.A FROM R WHERE R.B = $1")
    with pytest.raises(ProtocolError, match="takes 1 parameter"):
        bind_parameters(query, [], count)
    with pytest.raises(ProtocolError, match="takes 1 parameter"):
        bind_parameters(query, [1, 2], count)
    with pytest.raises(ProtocolError, match="unsupported parameter"):
        bind_parameters(query, [1.5], count)
    with pytest.raises(ProtocolError, match="unsupported parameter"):
        bind_parameters(query, [True], count)


def test_bind_zero_params_returns_template():
    query, count = _prepare("SELECT R.A FROM R")
    assert bind_parameters(query, [], count) is query


# -- row framing --------------------------------------------------------------


def test_row_json_round_trip_preserves_null():
    rows = [(1, NULL), ("x", 2)]
    wire = [row_to_json(row) for row in rows]
    assert wire == [[1, None], ["x", 2]]
    assert rows_from_json(wire) == rows
