"""Theorem 2 in action: evaluating SQL without three-valued logic.

Everyone "knows" SQL needs 3VL to handle NULLs.  The paper proves it does
not: the Figure 10 translation θ ↦ θᵗ produces, for any query Q, a query Q′
with ⟦Q⟧ = ⟦Q′⟧2v — the same answers under a plain two-valued semantics
where f and u are conflated (or where = is syntactic equality).

This script translates a NOT IN query (the nastiest case: negation over a
possibly-unknown membership test) and shows the rewritten SQL.

Run:  python examples/three_valued_logic.py
"""

from repro import (
    NULL,
    Database,
    Schema,
    SqlSemantics,
    TwoValuedTranslator,
    annotate,
    print_query,
)

schema = Schema({"R": ("A",), "S": ("A",)})
db = Database(schema, {"R": [(1,), (2,), (NULL,)], "S": [(2,), (NULL,)]})

TEXT = "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"
query = annotate(TEXT, schema)

three_valued = SqlSemantics(schema)  # the paper's ⟦·⟧ (Figures 4-7)
reference = three_valued.run(query, db)

print(f"Query: {TEXT}")
print(f"Database: R = {{1, 2, NULL}}, S = {{2, NULL}}")
print(f"\n3VL result (official SQL semantics): {sorted(reference.bag, key=repr)}")

for mode in ("conflating", "syntactic"):
    translator = TwoValuedTranslator(schema, equality=mode)
    translated = translator.translate_query(query)
    two_valued = SqlSemantics(schema, logic=translator.logic)
    result = two_valued.run(translated, db)
    print(f"\n--- two-valued semantics, equality mode: {mode}")
    print("translated query Q′ (Figure 10):")
    print(f"  {print_query(translated)}")
    print(f"2VL result: {sorted(result.bag, key=repr)}")
    assert result.same_as(reference), "Theorem 2 violated!"

print(
    "\nBoth two-valued evaluations return exactly the 3VL answer: as the\n"
    "paper concludes, three-valued logic adds no expressive power to basic\n"
    "SQL — at the price of the more verbose (and disjunction-heavy) Q′."
)
