"""TPC-H structural statistics: the numbers Section 4 quotes."""

from repro.generator.tpch import (
    TPCH_QUERY_STATS,
    tpch_schema,
    tpch_statistics,
)


def test_eight_base_tables():
    schema = tpch_schema()
    assert len(schema.table_names) == 8
    assert set(schema.table_names) == {
        "region",
        "nation",
        "supplier",
        "customer",
        "part",
        "partsupp",
        "orders",
        "lineitem",
    }


def test_twenty_two_queries():
    assert len(TPCH_QUERY_STATS) == 22
    assert set(TPCH_QUERY_STATS) == {f"Q{i}" for i in range(1, 23)}


def test_all_referenced_tables_exist():
    schema = tpch_schema()
    for stats in TPCH_QUERY_STATS.values():
        for table in stats.tables:
            assert table in schema


def test_lineitem_columns():
    assert len(tpch_schema().attributes("lineitem")) == 16


def test_average_tables_is_about_3_2():
    """Paper: 'on average each benchmark query uses only 3.2'."""
    stats = tpch_statistics()
    assert abs(stats["avg_tables_per_query"] - 3.2) < 0.15


def test_all_but_one_query_uses_at_most_6_tables():
    stats = tpch_statistics()
    assert stats["queries_with_more_than_6_tables"] == 1


def test_exactly_three_queries_exceed_8_conditions():
    """Paper: 'only three queries use more than 8 conditions'."""
    stats = tpch_statistics()
    assert stats["queries_with_more_than_8_conditions"] == 3


def test_max_nesting_is_3():
    """Paper: 'no query exceeds 3 levels of nesting'."""
    stats = tpch_statistics()
    assert stats["max_nesting"] == 3


def test_tables_distinct_per_query():
    for name, stats in TPCH_QUERY_STATS.items():
        assert len(set(stats.tables)) == len(stats.tables), name


def test_generator_parameters_derivable():
    """The paper's choices (tables=6, nest=3, attr=3, cond=8) are consistent
    with the encoded statistics."""
    stats = tpch_statistics()
    # all but one query fits in 6 tables
    assert stats["queries_with_more_than_6_tables"] <= 1
    # nesting never exceeds 3
    assert stats["max_nesting"] <= 3
    # few queries exceed 8 conditions
    assert stats["queries_with_more_than_8_conditions"] <= 3
